#ifndef MAMMOTH_WAL_RECORD_H_
#define MAMMOTH_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/bat.h"
#include "core/table.h"
#include "core/value.h"

namespace mammoth::wal {

/// The WAL is a stream of length-prefixed, CRC32-framed logical records:
///
///   frame   := [u32 payload_len][u32 crc32(payload)][payload]
///   payload := [u8 type][body]
///
/// Statements are logged as transactions — `Begin, op..., Commit` appended
/// contiguously (the engine serializes DML, so transactions never
/// interleave in the log). Ops carry *values*, not physical bytes: replay
/// re-drives the delta machinery (`Table::Insert`/`Delete`) from identical
/// state, which reproduces the pre-crash tables bit-identically.
///
/// Decoding distinguishes the two ways a log can end badly:
///   - a *torn tail* — the final frame of the final segment is incomplete
///     or fails its CRC. Normal after a crash mid-append; recovery stops
///     at the last whole frame.
///   - *mid-log corruption* — a bad frame with valid data after it (or in
///     a non-final segment). Never produced by a crash; surfaced as a
///     typed kCorruption error instead of silently dropping records.
enum class RecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kInsertRows = 3,
  kDeletePositions = 4,
  kUpdateCells = 5,
  kCreateTable = 6,
  kSetCompression = 7,
};

/// Frame overhead per record: u32 length + u32 CRC.
constexpr size_t kFrameHeaderBytes = 8;

/// Upper bound on a single record payload; a length prefix beyond it is
/// treated like a CRC failure (garbage, not a huge record).
constexpr size_t kMaxRecordBytes = size_t{1} << 30;

/// CRC-32 (IEEE 802.3, reflected) over `n` bytes.
uint32_t Crc32(const void* data, size_t n);

/// A decoded record. Which fields are meaningful depends on `type`:
///   kBegin/kCommit      txn_id
///   kCreateTable        table, schema
///   kInsertRows         table, schema, rows
///   kDeletePositions    table, oids
///   kUpdateCells        table, schema, rows (new images), oids (replaced)
///   kSetCompression     table, compress
struct Record {
  RecordType type = RecordType::kBegin;
  uint64_t lsn = 0;      ///< byte offset of this frame in the logical log
  uint64_t end_lsn = 0;  ///< offset just past this frame (next record's lsn)
  uint64_t txn_id = 0;
  std::string table;
  std::vector<ColumnDef> schema;
  std::vector<std::vector<Value>> rows;
  std::vector<Oid> oids;
  bool compress = false;
};

/// --- Encoding --------------------------------------------------------------

std::string EncodeBegin(uint64_t txn_id);
std::string EncodeCommit(uint64_t txn_id);
std::string EncodeCreateTable(const std::string& table,
                              const std::vector<ColumnDef>& schema);
std::string EncodeInsertRows(const std::string& table,
                             const std::vector<ColumnDef>& schema,
                             const std::vector<std::vector<Value>>& rows);
std::string EncodeDeletePositions(const std::string& table, const Bat& oids);
std::string EncodeUpdateCells(const std::string& table,
                              const std::vector<ColumnDef>& schema,
                              const Bat& oids,
                              const std::vector<std::vector<Value>>& rows);
std::string EncodeSetCompression(const std::string& table, bool compress);

/// Wraps a payload in a `[len][crc][payload]` frame appended to `out`.
void AppendFrame(std::string* out, std::string_view payload);

/// Convenience used by the engine: the op payloads of one statement.
/// Empty when the statement had no durable effect (e.g. UPDATE of 0 rows).
class TxnBuilder {
 public:
  void CreateTable(const std::string& table,
                   const std::vector<ColumnDef>& schema) {
    ops_.push_back(EncodeCreateTable(table, schema));
  }
  void InsertRows(const std::string& table,
                  const std::vector<ColumnDef>& schema,
                  const std::vector<std::vector<Value>>& rows) {
    if (!rows.empty()) ops_.push_back(EncodeInsertRows(table, schema, rows));
  }
  void DeletePositions(const std::string& table, const Bat& oids) {
    if (oids.Count() > 0) ops_.push_back(EncodeDeletePositions(table, oids));
  }
  void UpdateCells(const std::string& table,
                   const std::vector<ColumnDef>& schema, const Bat& oids,
                   const std::vector<std::vector<Value>>& rows) {
    if (oids.Count() > 0) {
      ops_.push_back(EncodeUpdateCells(table, schema, oids, rows));
    }
  }
  void SetCompression(const std::string& table, bool compress) {
    ops_.push_back(EncodeSetCompression(table, compress));
  }
  bool empty() const { return ops_.empty(); }
  const std::vector<std::string>& ops() const { return ops_; }

 private:
  std::vector<std::string> ops_;
};

/// --- Decoding --------------------------------------------------------------

/// Decodes one payload (without the frame header) into a Record.
Result<Record> DecodeRecord(std::string_view payload);

/// How a decoded byte stream ended.
enum class TailState : uint8_t {
  kClean,  ///< stream ends exactly on a frame boundary
  kTorn,   ///< incomplete/CRC-failed final frame (normal after a crash)
};

/// Decodes every frame in `bytes` (one segment's record stream, starting
/// at logical offset `base_lsn`) and appends the records to `out`. With
/// `last_segment`, a bad final frame is reported as a torn tail via the
/// return value and `valid_bytes` (the prefix worth keeping); in any
/// other position a bad frame is mid-log corruption → typed error.
Result<TailState> DecodeFrames(std::string_view bytes, uint64_t base_lsn,
                               bool last_segment, std::vector<Record>* out,
                               size_t* valid_bytes);

}  // namespace mammoth::wal

#endif  // MAMMOTH_WAL_RECORD_H_
