#ifndef MAMMOTH_WAL_DB_H_
#define MAMMOTH_WAL_DB_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "wal/wal.h"

namespace mammoth {
class Catalog;
}
namespace mammoth::sql {
class Engine;
}

namespace mammoth::wal {

/// A durable database directory:
///
///   <dir>/CURRENT                 "cp_lsn snap_name next_txn_id\n",
///                                 swung atomically (tmp + rename)
///   <dir>/snap_<lsn>/<table>/...  checkpoint snapshot (SaveCatalog format)
///   <dir>/wal/wal_<lsn>.log       log segments; 16-byte header
///                                 (magic + start LSN), then CRC frames
///
/// The LSN is the byte offset in the *logical* record stream — segment
/// headers don't count — and is monotone across the database's lifetime.

/// What recovery found and replayed.
struct RecoveryInfo {
  uint64_t checkpoint_lsn = 0;
  uint64_t txns_applied = 0;      ///< committed after the checkpoint
  uint64_t txns_skipped = 0;      ///< committed before it (stale segments)
  uint64_t txns_uncommitted = 0;  ///< trailing Begin without Commit
  uint64_t records_applied = 0;
  bool torn_tail = false;         ///< final segment ended mid-frame
  std::string snapshot_dir;       ///< loaded snapshot (empty: none)
  WalResume resume;               ///< where the reopened Wal appends next
};

/// Applies one decoded WAL op record (CreateTable/InsertRows/...) to a
/// live catalog, reproducing the exact physical layout (OIDs, delta
/// contents) the record described. Shared by Recover and the replication
/// applier, which replays shipped records through the same machinery.
/// kBegin/kCommit markers are the caller's business and are rejected.
/// `stamp` is the MVCC commit stamp applied rows/deletes carry: recovery
/// uses the default 0 (visible-to-all — only committed txns are
/// replayed), the replication applier passes the replica-local commit
/// timestamp so open replica snapshots don't see the rows early.
Status ApplyRecord(Catalog* catalog, const Record& rec, uint64_t stamp = 0);

/// Replays `dir` into `catalog` (which should be empty): loads the
/// checkpoint snapshot, then re-applies every transaction whose Commit
/// record is past the checkpoint, in log order. A torn tail and trailing
/// uncommitted records are ignored (reported in the info); a bad frame
/// anywhere else is kCorruption. Replay is idempotent: recovering the
/// same directory twice into fresh catalogs yields bit-identical tables.
Result<RecoveryInfo> Recover(const std::string& dir, Catalog* catalog,
                             bool use_mmap = false);

struct DbOptions {
  WalOptions wal;
  bool use_mmap = false;  ///< map snapshot columns zero-copy on recovery
};

struct OpenedDb {
  std::unique_ptr<Wal> wal;
  RecoveryInfo info;
};

/// Opens (or creates) the database at `dir` into `engine`: recovers into
/// the engine's catalog, opens the log positioned after the last
/// surviving record, and attaches it so subsequent DML is logged and
/// group-committed. The engine must not have executed any DML yet.
Result<OpenedDb> OpenDatabase(const std::string& dir, sql::Engine* engine,
                              const DbOptions& options = {});

/// Compares the *visible images* of two catalogs (schemas plus live rows
/// in position order, bit-exact cells) — visible-image because a
/// checkpointed table is stored merged while an in-memory reference may
/// still hold deltas. OK when identical; kInternal naming the first
/// difference otherwise. Used by the recovery tests and the crash
/// harness.
Status CompareCatalogs(const Catalog& a, const Catalog& b);

}  // namespace mammoth::wal

#endif  // MAMMOTH_WAL_DB_H_
