#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace mammoth::server {

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    ++rejected_;
    return Status::Unavailable("server shutting down");
  }
  // Fast path: capacity free and nobody queued ahead of us.
  if (inflight_ < config_.max_inflight && queue_.empty()) {
    ++inflight_;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
    ++admitted_;
    return Ticket(this);
  }
  if (queue_.size() >= config_.max_queue) {
    ++rejected_;
    return Status::Unavailable("admission queue full (" +
                               std::to_string(config_.max_queue) +
                               " waiters)");
  }
  Waiter me;
  queue_.push_back(&me);
  ++queued_total_;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.queue_timeout_ms);
  // GrantLocked pops us off the queue and sets `granted` when our turn
  // comes; Shutdown sets `abandoned`.
  cv_.wait_until(lock, deadline,
                 [&] { return me.granted || me.abandoned; });
  if (me.granted) {
    ++admitted_;
    return Ticket(this);
  }
  if (!me.abandoned) {
    // Timed out while still queued: unlink ourselves.
    queue_.erase(std::find(queue_.begin(), queue_.end(), &me));
    ++timed_out_;
    return Status::TimedOut("queued past " +
                            std::to_string(config_.queue_timeout_ms) +
                            " ms admission timeout");
  }
  ++rejected_;
  return Status::Unavailable("server shutting down");
}

void AdmissionController::GrantLocked() {
  while (!queue_.empty() && inflight_ < config_.max_inflight) {
    Waiter* next = queue_.front();
    queue_.pop_front();
    next->granted = true;
    ++inflight_;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
  }
  cv_.notify_all();
}

void AdmissionController::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --inflight_;
  GrantLocked();
}

void AdmissionController::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  for (Waiter* w : queue_) w->abandoned = true;
  queue_.clear();
  cv_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.timed_out = timed_out_;
  s.rejected = rejected_;
  s.queued_total = queued_total_;
  s.inflight = inflight_;
  s.queued = static_cast<int>(queue_.size());
  s.peak_inflight = peak_inflight_;
  return s;
}

}  // namespace mammoth::server
