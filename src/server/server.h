#ifndef MAMMOTH_SERVER_SERVER_H_
#define MAMMOTH_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "compress/compressed_kernels.h"
#include "parallel/task_pool.h"
#include "scan/shared_scan.h"
#include "server/admission.h"
#include "server/wire.h"
#include "sql/engine.h"
#include "wal/db.h"

namespace mammoth::repl {
class ReplicaApplier;
class ReplicationSource;
}  // namespace mammoth::repl

namespace mammoth::server {

class Reactor;

struct ServerConfig {
  /// Front-end architecture. kEpoll (default) multiplexes every session
  /// over one event-loop thread with non-blocking sockets and executes
  /// requests on a bounded worker pool — connections are cheap (an fd
  /// plus buffers), so tens of thousands can stay open. kThreads is the
  /// legacy thread-per-connection front-end, kept as the benchmark
  /// baseline and fallback.
  enum class Frontend { kEpoll, kThreads };
  Frontend frontend = Frontend::kEpoll;
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  uint16_t port = 0;
  /// Bound on concurrently connected sessions (a thread each in
  /// kThreads mode, an fd + buffers in kEpoll mode); connections past
  /// the bound are rejected with an Error frame.
  int max_sessions = 32;
  /// Reactor worker threads executing requests (kEpoll only). 0 derives
  /// max(2, admission.max_inflight) so admission, not the pool, is the
  /// concurrency bottleneck.
  int workers = 0;
  /// Per-connection cap on pipelined requests in flight; a connection at
  /// the cap stops being read until responses drain (kEpoll only).
  int max_pipeline = 32;
  /// Per-connection cap on buffered unread response bytes; a slow
  /// consumer past it is disconnected (kEpoll only).
  size_t max_wbuf_bytes = 64u << 20;
  /// Front-door query concurrency control (see admission.h).
  AdmissionConfig admission;
  /// Workers in the shared kernel TaskPool; 0 uses DefaultThreadCount().
  int threads = 0;
  /// Name reported in the Hello frame.
  std::string name = "mammothdb";
  /// Shared-scan scheduler tuning (chunk grain, sharing threshold);
  /// concurrent sessions scanning one table share a physical pass (§5).
  scan::SharedScanConfig shared_scan;
  /// Stop() gives draining sessions this long to finish and deliver
  /// results; past the deadline remaining session sockets are shut
  /// down so a wedged peer cannot hold up shutdown.
  int drain_force_millis = 10000;
  /// Durable database directory. Empty runs fully in memory (the
  /// pre-durability behaviour); set, the server recovers the directory
  /// into its engine on Start() and write-ahead-logs every DDL/DML with
  /// group commit (see src/wal/).
  std::string db_dir;
  /// WAL/recovery tuning used when `db_dir` is set.
  wal::DbOptions db;
  /// Replication (src/repl/): "host:port" of a running primary makes
  /// this server start as a *read replica* — it does not open `db_dir`
  /// at startup (the directory is reserved for promotion), marks its
  /// engine read-only, streams the primary's WAL and serves SELECTs.
  /// The PROMOTE command turns it into a writable primary at its
  /// replayed LSN. Empty (default): normal primary role; a durable
  /// primary accepts replica subscriptions automatically.
  std::string replicate_from;
  /// Primary-side semi-synchronous commits: a commit is acknowledged
  /// only once at least one connected replica has replayed it (waived
  /// with zero replicas, and bounded by a timeout against wedged ones).
  bool repl_semi_sync = true;
};

/// Monotonic counters + gauges exposed through stats() and the
/// `SERVER STATUS` wire command.
struct ServerStatsSnapshot {
  uint64_t sessions_total = 0;  ///< connections ever accepted as sessions
  uint64_t sessions_rejected = 0;  ///< bounced: session cap or draining
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;  ///< SQL/protocol errors (not admission)
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  int sessions_open = 0;
  bool draining = false;
  AdmissionStats admission;
  scan::SharedScanStats shared_scans;
  bool durable = false;  ///< a WAL is attached (db_dir was set)
  wal::WalStats wal;
  uint64_t wal_recovered_txns = 0;  ///< transactions replayed at startup
  /// Compressed storage posture (tables/columns/bytes) of the catalog.
  sql::Engine::CompressionStats compression;
  /// Result bytes saved by compressed wire shipping (sessions that
  /// negotiated kWireCapCompressedResults).
  uint64_t wire_result_bytes_saved = 0;
  /// Gauge: connections currently owned by the epoll reactor (0 in
  /// thread-per-connection mode).
  uint64_t epoll_sessions = 0;
  /// Gauge: seq-tagged requests currently in flight across all reactor
  /// connections.
  uint64_t pipelined_in_flight = 0;
  /// Prepared-statement cache counters of the embedded engine.
  sql::PreparedStats prepared;
  /// Replication posture. Every counter is always present (zero when
  /// not applicable) so the SERVER STATUS row set stays fixed-shape.
  uint64_t repl_role = 0;      ///< 0 = primary, 1 = replica
  uint64_t repl_replicas = 0;  ///< connected subscribers (primary side)
  uint64_t repl_shipped_lsn = 0;  ///< laggiest replica's send cursor
  uint64_t repl_acked_lsn = 0;    ///< laggiest replica's replayed ack
  uint64_t repl_replayed_lsn = 0;       ///< replica: applied through here
  uint64_t repl_source_durable_lsn = 0; ///< replica: primary's durable LSN
  uint64_t repl_lag_bytes = 0;  ///< durable-vs-replayed gap (either role)
  uint64_t repl_txns_applied = 0;  ///< replica: transactions replayed
  uint64_t repl_snapshots = 0;  ///< bootstraps served (primary) / received
  /// Recycler cache posture (zeros when no recycler is attached);
  /// compressed_bytes is the portion of the cache held in compressed form.
  recycle::Recycler::Stats recycler;
  /// Compressed-execution kernel counters (code-space selects, run folds,
  /// bounded projections vs their decode fallbacks).
  compress::KernelStats compressed_kernels;
  /// Transaction counters of the embedded engine (BEGIN/COMMIT/ROLLBACK
  /// plus write-write conflicts; txn_* STATUS rows).
  txn::TxnStats txn;
};

/// The MammothDB network front-end: a TCP server speaking the wire.h
/// protocol, thread-per-connection over a bounded session pool. Each
/// session runs statements through the shared sql::Engine (which
/// serializes DDL/DML against concurrent SELECTs; see engine.h) after
/// passing the AdmissionController, which bounds in-flight queries and
/// hands each one an ExecContext over the server's single TaskPool.
///
/// Lifecycle: Start() binds and spawns the accept loop; BeginDrain()
/// flips the server into reject mode (new connections and new queries
/// get a kUnavailable Error frame; in-flight queries finish and deliver
/// their results); Stop() drains and joins everything. The destructor
/// calls Stop().
class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts accepting. Fails with kIOError when the
  /// address cannot be bound. Opens durable storage first when
  /// `db_dir` is configured (unless already opened explicitly).
  Status Start();

  /// Recovers `config.db_dir` into the engine and attaches the WAL.
  /// Called by Start(); callable earlier to inspect the recovered
  /// catalog before going live (e.g. to seed a fresh database only).
  /// Idempotent; no-op when `db_dir` is empty.
  Status OpenDurableStorage();

  /// Recovery outcome of OpenDurableStorage() (default-constructed when
  /// the server runs in memory).
  const wal::RecoveryInfo& recovery_info() const { return recovery_info_; }

  /// Stops admitting work: queued queries and new connections/queries
  /// are rejected with typed Error frames; in-flight queries drain.
  void BeginDrain();

  /// BeginDrain() + waits for sessions to drain, then joins all server
  /// threads and closes the listening socket. Idempotent.
  void Stop();

  /// The actual listening port (after Start()).
  uint16_t port() const { return port_; }

  /// The embedded engine. Populate it (e.g. CREATE/INSERT) before
  /// Start(); once sessions are live all access must go through
  /// Execute(), whose internal lock arbitrates readers and writers.
  sql::Engine* engine() { return &engine_; }

  ServerStatsSnapshot stats() const;

  /// The `SERVER STATUS` result relation: (counter:str, value:lng).
  /// The row *ordering is a wire contract* (stable machine-readable
  /// positions; see DESIGN.md §12): new counters append, existing rows
  /// never move or disappear within a wire version.
  static mal::QueryResult StatusResult(const ServerStatsSnapshot& s);

  /// The PROMOTE command body (also intercepted from SQL like SERVER
  /// STATUS): stops replication at a transaction boundary, reopens
  /// `db_dir` as a fresh WAL at the replayed LSN (when configured),
  /// flips the engine writable and starts accepting subscribers of its
  /// own. Errors with kInvalidArgument on a server that is not a
  /// replica. Returns a one-row relation (promoted_lsn).
  Result<mal::QueryResult> Promote();

 private:
  friend class Reactor;

  /// A live session: its thread plus the socket it owns. fd is reset to
  /// -1 (under sessions_mu_) before the session closes it, so Stop()'s
  /// forced-drain shutdown() can never hit a recycled descriptor.
  struct SessionHandle {
    std::thread thread;
    int fd = -1;
  };

  /// One executable request decoded from a client frame — produced by
  /// both front-ends, run by RunJob() on a reactor worker or the session
  /// thread. seq 0 means a plain (untagged) kQuery.
  struct WireJob {
    uint32_t seq = 0;
    bool is_execute = false;  ///< kExecute (stmt_id+params) vs SQL text
    std::string sql;
    uint64_t stmt_id = 0;
    std::vector<Value> params;
  };

  void AcceptLoop();
  void SessionLoop(int fd, uint64_t session_id);
  /// Joins session threads that have announced completion, so a
  /// long-running server does not accumulate one zombie thread per
  /// connection ever served. Called from the accept loop and Stop().
  void ReapFinishedSessions();
  /// Decodes a kQuery / kQuerySeq / kExecute frame into a job. Errors
  /// are session-fatal protocol violations.
  Result<WireJob> DecodeJob(const Frame& frame);
  /// Executes one job — SERVER STATUS intercept, admission, engine —
  /// and returns exactly one fully encoded response frame (kResult /
  /// kError, or their seq-tagged twins when job.seq != 0). `session`
  /// carries the connection's transaction state (BEGIN/COMMIT/ROLLBACK).
  std::string RunJob(const WireJob& job, uint32_t caps,
                     const sql::SessionPtr& session);
  /// Handles a kPrepare frame (no admission: preparing is one parse) and
  /// returns the encoded kPrepared or kErrorSeq response frame. `caps`
  /// gates the parameter-type metadata suffix (kWireCapParamTypes).
  std::string HandlePrepareFrame(uint32_t seq, const std::string& text,
                                 uint32_t caps);
  /// Capability bits offered in the Hello frame (kWireCapReplication
  /// only when this server can actually serve a WAL stream).
  uint32_t AdvertisedCaps() const;
  /// Hands a subscribed socket (already past kReplSubscribe; `leftover`
  /// is any bytes read beyond that frame) to the replication source.
  /// On success the source owns the fd; on error the caller still does.
  Status AdoptReplica(int fd, uint64_t start_lsn, std::string leftover);
  /// Thread-safe accessors for the replication endpoints (Promote()
  /// creates the source after startup, so bare member reads would race).
  repl::ReplicationSource* repl_source() const;
  repl::ReplicaApplier* repl_applier() const;
  Status SendFrame(int fd, FrameType type, std::string_view payload);
  /// Writes one pre-encoded frame with a short-write loop.
  Status SendBytes(int fd, std::string_view bytes);
  Status SendError(int fd, const Status& error);

  const ServerConfig config_;
  /// Declared before engine_ (which holds pointers to them) so they are
  /// destroyed after every engine user is gone.
  scan::SharedScanScheduler shared_scans_;
  std::unique_ptr<wal::Wal> wal_;
  wal::RecoveryInfo recovery_info_;
  bool storage_opened_ = false;
  sql::Engine engine_;
  std::unique_ptr<parallel::TaskPool> pool_;
  AdmissionController admission_;
  /// The epoll front-end (null in kThreads mode).
  std::unique_ptr<Reactor> reactor_;
  /// Replication endpoints; repl_mu_ guards the *pointers* (Promote()
  /// swaps them while sessions run), the objects synchronize themselves.
  mutable std::mutex repl_mu_;
  std::unique_ptr<repl::ReplicationSource> repl_source_;
  std::unique_ptr<repl::ReplicaApplier> repl_applier_;
  std::atomic<bool> replica_role_{false};
  std::mutex promote_mu_;  ///< serializes concurrent PROMOTEs

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};  // accept loop exit (after drain)
  std::atomic<bool> stopped_{false};   // Stop() idempotence
  std::thread accept_thread_;

  std::mutex sessions_mu_;
  std::unordered_map<uint64_t, SessionHandle> sessions_;
  std::vector<uint64_t> finished_sessions_;  // ids awaiting join/reap
  std::atomic<int> sessions_open_{0};
  std::atomic<uint64_t> next_session_id_{1};

  std::atomic<uint64_t> sessions_total_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> wire_result_bytes_saved_{0};
};

}  // namespace mammoth::server

#endif  // MAMMOTH_SERVER_SERVER_H_
