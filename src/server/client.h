#ifndef MAMMOTH_SERVER_CLIENT_H_
#define MAMMOTH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/wire.h"

namespace mammoth::server {

/// Blocking client for the wire.h protocol: one TCP connection, one
/// outstanding query at a time (the protocol answers every Query frame
/// with exactly one Result or Error frame). Used by tests, the
/// throughput benchmark and `mammoth_shell --connect`.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;

  /// Connects and performs the Hello handshake. `host` is resolved with
  /// getaddrinfo, so both numeric addresses and names work. A draining
  /// server answers with an Error frame, surfaced as its typed Status
  /// (kUnavailable) here.
  static Result<Client> Connect(const std::string& host, uint16_t port);

  /// Executes one statement, returning the decoded columnar result.
  /// Server-side failures carry their wire status code (e.g. kTimedOut
  /// for an admission-queue timeout); transport failures are kIOError.
  Result<mal::QueryResult> Query(const std::string& sql);

  /// Sends a Close frame and closes the socket. Safe to skip: the
  /// destructor closes the socket either way.
  void Close();

  bool connected() const { return fd_ >= 0; }
  const HelloInfo& hello() const { return hello_; }

 private:
  Status WriteAll(std::string_view bytes);
  /// Reads frames off the socket until one is complete.
  Result<Frame> ReadFrame();

  int fd_ = -1;
  HelloInfo hello_;
  std::string buffer_;  // bytes received past the last decoded frame
};

}  // namespace mammoth::server

#endif  // MAMMOTH_SERVER_CLIENT_H_
