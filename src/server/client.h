#ifndef MAMMOTH_SERVER_CLIENT_H_
#define MAMMOTH_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "server/wire.h"

namespace mammoth::server {

struct ClientOptions {
  /// >0 arms SO_RCVTIMEO on the socket: a server that stops responding
  /// makes reads fail with kTimedOut instead of blocking forever.
  int recv_timeout_ms = 0;
};

/// A prepared statement as known to the client: the server-assigned id
/// plus the number of `?` placeholders to bind at EXECUTE.
struct PreparedHandle {
  uint64_t stmt_id = 0;
  uint32_t nparams = 0;
  /// Per-placeholder type hints (ParamType values, one per ordinal),
  /// sent by servers that negotiated kWireCapParamTypes; empty against
  /// older servers. Advisory — binding still type-checks server-side.
  std::vector<uint8_t> param_types;
};

/// Blocking client for the wire.h protocol. The classic surface is one
/// outstanding Query() at a time; against a server that negotiated
/// kWireCapPipeline it can additionally keep many seq-tagged queries in
/// flight (QueryAsync/Await — responses complete out of order and are
/// stashed until awaited), and with kWireCapPrepared it can
/// Prepare/ExecutePrepared, skipping server-side SQL parsing and
/// compilation per execution. Used by tests, the throughput benchmark
/// and `mammoth_shell --connect`.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;
  Client& operator=(Client&& o) noexcept;

  /// Connects and performs the Hello handshake. `host` is resolved with
  /// getaddrinfo, so both numeric addresses and names work. A draining
  /// server answers with an Error frame, surfaced as its typed Status
  /// (kUnavailable) here.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientOptions& options);
  static Result<Client> Connect(const std::string& host, uint16_t port) {
    return Connect(host, port, ClientOptions{});
  }

  /// Executes one statement, returning the decoded columnar result.
  /// Server-side failures carry their wire status code (e.g. kTimedOut
  /// for an admission-queue timeout); transport failures are kIOError.
  Result<mal::QueryResult> Query(const std::string& sql);

  /// Pipelining: sends one seq-tagged query without waiting and returns
  /// its sequence number. Needs the server's kWireCapPipeline.
  Result<uint32_t> QueryAsync(const std::string& sql);

  /// Blocks until the response for `seq` arrives (responses for other
  /// in-flight queries received meanwhile are stashed for their own
  /// Await). A response for a sequence number this client never sent is
  /// rejected as a protocol violation.
  Result<mal::QueryResult> Await(uint32_t seq);

  /// Number of queries sent but not yet awaited.
  size_t in_flight() const { return pending_.size(); }

  /// Transaction helpers: BEGIN / COMMIT / ROLLBACK on this connection's
  /// server-side session. Between Begin() and Commit() every statement
  /// of this connection runs inside the transaction: SELECTs read the
  /// BEGIN-time snapshot (plus own writes), DML stays invisible to other
  /// sessions until Commit(). A Commit() may fail with kConflict (another
  /// transaction wrote a clashing row first) — the transaction is then
  /// already rolled back and can simply be retried.
  Status Begin() { return Query("BEGIN").status(); }
  Status Commit() { return Query("COMMIT").status(); }
  Status Rollback() { return Query("ROLLBACK").status(); }

  /// Prepares a statement server-side (literals may be `?`). Needs the
  /// server's kWireCapPrepared.
  Result<PreparedHandle> Prepare(const std::string& sql);

  /// Executes a prepared statement with `params` bound to its
  /// placeholders, synchronously or pipelined.
  Result<mal::QueryResult> ExecutePrepared(const PreparedHandle& handle,
                                           const std::vector<Value>& params);
  Result<uint32_t> ExecutePreparedAsync(const PreparedHandle& handle,
                                        const std::vector<Value>& params);

  /// Sends a Close frame and closes the socket. Safe to skip: the
  /// destructor closes the socket either way.
  void Close();

  bool connected() const { return fd_ >= 0; }
  const HelloInfo& hello() const { return hello_; }
  /// Capabilities negotiated with the server (intersection of both
  /// sides' understanding).
  uint32_t caps() const { return caps_; }

 private:
  /// Short-write loop (EINTR-safe).
  Status WriteAll(std::string_view bytes);
  /// Reads frames off the socket until one is complete (short reads are
  /// the normal case); kTimedOut when SO_RCVTIMEO expires mid-frame.
  Result<Frame> ReadFrame();
  /// Files a seq-tagged response frame under its sequence number;
  /// rejects replies to sequence numbers not in flight.
  Status StashTagged(const Frame& frame);
  uint32_t NextSeq();

  int fd_ = -1;
  HelloInfo hello_;
  uint32_t caps_ = 0;
  std::string buffer_;  // bytes received past the last decoded frame
  uint32_t next_seq_ = 1;
  std::unordered_set<uint32_t> pending_;  // sent, response not yet seen
  std::unordered_map<uint32_t, Result<mal::QueryResult>> done_;  // stashed
};

}  // namespace mammoth::server

#endif  // MAMMOTH_SERVER_CLIENT_H_
