#ifndef MAMMOTH_SERVER_REACTOR_H_
#define MAMMOTH_SERVER_REACTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "server/wire.h"
#include "sql/engine.h"

namespace mammoth::server {

class Server;

/// The epoll front-end (the C10K half of this server): one event-loop
/// thread owns every client socket via non-blocking I/O — per-connection
/// read/write buffers, incremental frame reassembly — and hands complete
/// request frames to a bounded worker pool that executes them through
/// the server's AdmissionController. Responses come back over an eventfd
/// and are flushed under write-readiness, so ten thousand mostly-idle
/// connections cost ten thousand fds and buffers, not ten thousand
/// threads.
///
/// ### Pipelining model (documented choice: out-of-order, seq-tagged)
///
/// Seq-framed requests (kQuerySeq / kExecute) may overlap arbitrarily on
/// one connection; each response carries the request's sequence number
/// and completes in whatever order the workers finish. Plain kQuery
/// frames keep the old protocol's contract instead: they execute
/// strictly serially per connection (one in flight, the rest in a
/// backlog), so a legacy client that writes two queries back-to-back
/// still reads its two untagged responses in order. A duplicate
/// sequence number among a connection's in-flight requests is
/// session-fatal; 0 is reserved and rejected at decode.
///
/// ### Backpressure
///
/// A connection with `max_pipeline` requests in flight (or backlogged)
/// stops being read until responses drain; a connection whose unread
/// response backlog exceeds `max_wbuf_bytes` is dropped as a slow
/// consumer. Both bounds keep a hostile pipeliner from ballooning
/// server memory.
class Reactor {
 public:
  struct Config {
    int workers = 2;
    int max_pipeline = 32;
    size_t max_wbuf_bytes = 64u << 20;
    int max_sessions = 32;
    int drain_force_millis = 10000;
  };

  Reactor(Server* server, const Config& config);
  ~Reactor();

  /// Takes over accepting on `listen_fd` (borrowed; the server closes it
  /// after Stop()) and starts the loop + worker threads.
  Status Start(int listen_fd);

  /// Queues a "server draining" error to every connection and marks it
  /// for close-after-flush; in-flight requests still deliver their
  /// responses first. New connections are rejected.
  void BeginDrain();

  /// BeginDrain() + bounded shutdown: connections still open past
  /// `drain_force_millis` (e.g. pipelined clients that stopped reading)
  /// are closed with their buffers, then all threads join. Idempotent.
  void Stop();

  int sessions_open() const { return sessions_open_.load(); }
  uint64_t pipelined_in_flight() const { return pipelined_.load(); }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    uint32_t caps = 0;
    uint32_t events = 0;  ///< epoll interest currently registered
    std::string rbuf;
    std::string wbuf;
    size_t woff = 0;  ///< bytes of wbuf already sent
    std::unordered_set<uint32_t> inflight;  ///< seq-tagged requests out
    bool plain_inflight = false;  ///< a plain kQuery is executing
    std::deque<std::string> plain_backlog;  ///< serialized plain queries
    bool want_close = false;  ///< close once flushed and idle
    bool drain_notified = false;
    /// Engine session carrying this connection's transaction state;
    /// aborted (rollback) when the connection closes.
    sql::SessionPtr session;
  };

  /// A request handed to the worker pool (self-contained copies — the
  /// Conn may die while the job runs).
  struct Task {
    uint64_t conn_id = 0;
    uint32_t caps = 0;
    sql::SessionPtr session;  ///< kept alive even if the Conn dies
    /// Disconnect auto-rollback: abort the session's open transaction
    /// instead of running a query. Queued (not done inline on the loop
    /// thread) because the abort serializes behind any in-flight
    /// statement of the same session.
    bool abort_session = false;
    bool tagged = false;  ///< counts toward pipelined_in_flight
    // Decoded job fields mirror Server::WireJob (kept as a blob here to
    // avoid a circular include; see reactor.cc).
    uint32_t seq = 0;
    bool is_execute = false;
    std::string sql;
    uint64_t stmt_id = 0;
    std::vector<Value> params;
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint32_t seq = 0;
    bool tagged = false;
    std::string bytes;  ///< one fully encoded response frame
  };

  void Loop();
  void WorkerLoop();
  void Accept();
  void HandleReadable(Conn* conn);
  /// Decodes and dispatches complete frames out of conn->rbuf; stops at
  /// the pipeline bound. Returns false when the session turned fatal.
  bool ProcessBuffer(Conn* conn);
  void Submit(Conn* conn, Task task);
  void ApplyCompletions();
  /// Requests in flight or parked for this connection (backpressure
  /// metric against max_pipeline).
  static int PipelineDepth(const Conn* conn);
  /// Appends response bytes to the write buffer; false when the
  /// connection was dropped for exceeding max_wbuf_bytes.
  bool AppendOut(Conn* conn, std::string_view bytes);
  void FlushConn(Conn* conn);
  /// Recomputes the epoll interest set from the conn's state.
  void UpdateEvents(Conn* conn);
  void FatalError(Conn* conn, const Status& error);
  void CloseConn(uint64_t id);
  void DrainNotify(Conn* conn);
  void Wake();

  Server* const server_;
  const Config config_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool workers_stop_ = false;

  std::mutex done_mu_;
  std::vector<Completion> done_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> sessions_open_{0};
  std::atomic<uint64_t> pipelined_{0};
};

}  // namespace mammoth::server

#endif  // MAMMOTH_SERVER_REACTOR_H_
