#include "server/wire.h"

#include <cstring>

#include "compress/pdict.h"
#include "compress/rle.h"
#include "core/bat.h"
#include "core/string_heap.h"

namespace mammoth::server {

namespace {

// --- little-endian primitives ---------------------------------------------

template <typename T>
void AppendInt(std::string* out, T v) {
  char buf[sizeof(T)];
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<char>((static_cast<uint64_t>(v) >> (8 * i)) & 0xff);
  }
  out->append(buf, sizeof(T));
}

/// Sequential bounds-checked reader over a payload. Every Read* returns
/// false once the payload is exhausted; callers turn that into one
/// "truncated" error instead of checking lengths inline.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool ReadInt(T* v) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    uint64_t acc = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<uint64_t>(
                 static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += sizeof(T);
    *v = static_cast<T>(acc);
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("wire: truncated ") + what);
}

void AppendString(std::string* out, std::string_view s) {
  // Clamp length prefix AND bytes together: a name over the u16 limit
  // ships truncated but decodable, never a corrupt payload.
  if (s.size() > UINT16_MAX) s = s.substr(0, UINT16_MAX);
  AppendInt<uint16_t>(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

bool ReadString(Reader* r, std::string* out) {
  uint16_t len = 0;
  std::string_view bytes;
  if (!r->ReadInt(&len) || !r->ReadBytes(len, &bytes)) return false;
  out->assign(bytes);
  return true;
}

bool ValidType(uint8_t t) {
  return t <= static_cast<uint8_t>(PhysType::kStr);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  AppendInt<uint32_t>(&out, kMagic);
  AppendInt<uint16_t>(&out, kWireVersion);
  AppendInt<uint8_t>(&out, static_cast<uint8_t>(type));
  AppendInt<uint8_t>(&out, 0);  // reserved
  AppendInt<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

Result<size_t> DecodeFrame(const char* data, size_t size, Frame* out) {
  if (size < kHeaderBytes) return size_t{0};
  Reader r(std::string_view(data, kHeaderBytes));
  uint32_t magic = 0, length = 0;
  uint16_t version = 0;
  uint8_t type = 0, reserved = 0;
  r.ReadInt(&magic);
  r.ReadInt(&version);
  r.ReadInt(&type);
  r.ReadInt(&reserved);
  r.ReadInt(&length);
  if (magic != kMagic) return Status::InvalidArgument("wire: bad magic");
  if (version != kWireVersion) {
    return Status::InvalidArgument("wire: protocol version " +
                                   std::to_string(version) + " != " +
                                   std::to_string(kWireVersion));
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kReplSnapEnd)) {
    return Status::InvalidArgument("wire: unknown frame type " +
                                   std::to_string(type));
  }
  if (reserved != 0) {
    return Status::InvalidArgument("wire: nonzero reserved byte");
  }
  if (length > kMaxPayloadBytes) {
    return Status::InvalidArgument("wire: oversized payload (" +
                                   std::to_string(length) + " bytes)");
  }
  if (size - kHeaderBytes < length) return size_t{0};
  out->type = static_cast<FrameType>(type);
  out->payload.assign(data + kHeaderBytes, length);
  return kHeaderBytes + static_cast<size_t>(length);
}

// --- Hello -----------------------------------------------------------------

std::string EncodeHello(const HelloInfo& hello) {
  std::string out;
  AppendInt<uint64_t>(&out, hello.session_id);
  AppendString(&out, hello.server_name);
  AppendInt<uint32_t>(&out, hello.caps);
  return out;
}

Result<HelloInfo> DecodeHello(std::string_view payload) {
  Reader r(payload);
  HelloInfo hello;
  if (!r.ReadInt(&hello.session_id) || !ReadString(&r, &hello.server_name)) {
    return Truncated("hello");
  }
  // Capability bits were appended later; a Hello without them (an older
  // server) decodes with caps = 0.
  if (!r.done() && !r.ReadInt(&hello.caps)) return Truncated("hello");
  if (!r.done()) return Truncated("hello");
  return hello;
}

// --- Caps ------------------------------------------------------------------

std::string EncodeCaps(uint32_t caps) {
  std::string out;
  AppendInt<uint32_t>(&out, caps);
  return out;
}

Result<uint32_t> DecodeCaps(std::string_view payload) {
  Reader r(payload);
  uint32_t caps = 0;
  if (!r.ReadInt(&caps) || !r.done()) return Truncated("caps");
  return caps;
}

// --- Sequence numbers --------------------------------------------------------

std::string PrependSeq(uint32_t seq, std::string_view rest) {
  std::string out;
  out.reserve(sizeof(uint32_t) + rest.size());
  AppendInt<uint32_t>(&out, seq);
  out.append(rest);
  return out;
}

Result<SeqPayload> SplitSeq(std::string_view payload) {
  Reader r(payload);
  SeqPayload sp;
  if (!r.ReadInt(&sp.seq)) return Truncated("sequence number");
  sp.rest = payload.substr(sizeof(uint32_t));
  if (sp.seq == 0) {
    // 0 is reserved so "no sequence number" is never a valid number;
    // rejecting it here covers every seq-framed type at once.
    return Status::InvalidArgument("wire: sequence number 0 is reserved");
  }
  return sp;
}

// --- Prepare / Execute -------------------------------------------------------

std::string EncodePrepared(uint32_t seq, const PreparedReply& reply,
                           uint32_t caps) {
  std::string out;
  AppendInt<uint32_t>(&out, seq);
  AppendInt<uint64_t>(&out, reply.stmt_id);
  AppendInt<uint32_t>(&out, reply.nparams);
  if ((caps & kWireCapParamTypes) != 0) {
    // Typed parameter metadata is strictly appended, and only for
    // sessions that negotiated it: an old client's exact-size decoder
    // still sees the original body.
    AppendInt<uint32_t>(&out, static_cast<uint32_t>(reply.param_types.size()));
    out.append(reinterpret_cast<const char*>(reply.param_types.data()),
               reply.param_types.size());
  }
  return out;
}

Result<PreparedReply> DecodePrepared(std::string_view rest) {
  Reader r(rest);
  PreparedReply reply;
  if (!r.ReadInt(&reply.stmt_id) || !r.ReadInt(&reply.nparams)) {
    return Truncated("prepared reply");
  }
  if (!r.done()) {
    // Optional typed-parameter suffix (kWireCapParamTypes sessions).
    uint32_t ntypes = 0;
    std::string_view bytes;
    if (!r.ReadInt(&ntypes) || ntypes > reply.nparams ||
        !r.ReadBytes(ntypes, &bytes) || !r.done()) {
      return Truncated("prepared reply");
    }
    for (const char b : bytes) {
      const uint8_t t = static_cast<uint8_t>(b);
      if (t > static_cast<uint8_t>(ParamType::kStr)) {
        return Status::InvalidArgument("wire: unknown parameter type " +
                                       std::to_string(t));
      }
      reply.param_types.push_back(t);
    }
  }
  return reply;
}

namespace {

/// Typed-parameter kind tags of the kExecute body.
enum class ParamKind : uint8_t { kNil = 0, kInt = 1, kReal = 2, kStr = 3 };

}  // namespace

std::string EncodeExecute(uint32_t seq, uint64_t stmt_id,
                          const std::vector<Value>& params) {
  std::string out;
  AppendInt<uint32_t>(&out, seq);
  AppendInt<uint64_t>(&out, stmt_id);
  AppendInt<uint16_t>(&out, static_cast<uint16_t>(params.size()));
  for (const Value& v : params) {
    if (v.is_int()) {
      AppendInt<uint8_t>(&out, static_cast<uint8_t>(ParamKind::kInt));
      AppendInt<uint64_t>(&out, static_cast<uint64_t>(v.AsInt()));
    } else if (v.is_real()) {
      AppendInt<uint8_t>(&out, static_cast<uint8_t>(ParamKind::kReal));
      uint64_t bits = 0;
      const double d = v.AsReal();
      std::memcpy(&bits, &d, sizeof(bits));
      AppendInt<uint64_t>(&out, bits);
    } else if (v.is_str()) {
      AppendInt<uint8_t>(&out, static_cast<uint8_t>(ParamKind::kStr));
      AppendInt<uint32_t>(&out, static_cast<uint32_t>(v.AsStr().size()));
      out.append(v.AsStr());
    } else {
      // nil and unsubstituted placeholders both ship as nil; the engine
      // rejects nils during substitution with a typed error.
      AppendInt<uint8_t>(&out, static_cast<uint8_t>(ParamKind::kNil));
    }
  }
  return out;
}

Result<ExecuteRequest> DecodeExecute(std::string_view rest) {
  Reader r(rest);
  ExecuteRequest req;
  uint16_t nparams = 0;
  if (!r.ReadInt(&req.stmt_id) || !r.ReadInt(&nparams)) {
    return Truncated("execute request");
  }
  req.params.reserve(nparams);
  for (uint16_t i = 0; i < nparams; ++i) {
    uint8_t kind = 0;
    if (!r.ReadInt(&kind)) return Truncated("execute parameter");
    switch (static_cast<ParamKind>(kind)) {
      case ParamKind::kNil:
        req.params.push_back(Value::Nil());
        break;
      case ParamKind::kInt: {
        uint64_t bits = 0;
        if (!r.ReadInt(&bits)) return Truncated("execute parameter");
        req.params.push_back(Value::Int(static_cast<int64_t>(bits)));
        break;
      }
      case ParamKind::kReal: {
        uint64_t bits = 0;
        if (!r.ReadInt(&bits)) return Truncated("execute parameter");
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        req.params.push_back(Value::Real(d));
        break;
      }
      case ParamKind::kStr: {
        uint32_t len = 0;
        std::string_view bytes;
        if (!r.ReadInt(&len) || !r.ReadBytes(len, &bytes)) {
          return Truncated("execute parameter");
        }
        req.params.push_back(Value::Str(std::string(bytes)));
        break;
      }
      default:
        return Status::InvalidArgument("wire: unknown parameter kind " +
                                       std::to_string(kind));
    }
  }
  if (!r.done()) {
    return Status::InvalidArgument("wire: trailing bytes after execute");
  }
  return req;
}

// --- Error -----------------------------------------------------------------

std::string EncodeError(const Status& error) {
  std::string out;
  AppendInt<uint8_t>(&out, static_cast<uint8_t>(error.code()));
  AppendInt<uint32_t>(&out, static_cast<uint32_t>(error.message().size()));
  out.append(error.message());
  return out;
}

Result<WireError> DecodeError(std::string_view payload) {
  Reader r(payload);
  uint8_t code = 0;
  uint32_t len = 0;
  std::string_view msg;
  if (!r.ReadInt(&code) || !r.ReadInt(&len) || !r.ReadBytes(len, &msg) ||
      !r.done()) {
    return Truncated("error frame");
  }
  if (code > static_cast<uint8_t>(StatusCode::kConflict)) {
    return Status::InvalidArgument("wire: unknown status code " +
                                   std::to_string(code));
  }
  WireError e;
  e.code = static_cast<StatusCode>(code);
  e.message.assign(msg);
  return e;
}

// --- Result ----------------------------------------------------------------

namespace {

/// Minimum rows before a result column is worth codec probing: tiny
/// results ship raw (the probe costs more than the bytes saved).
constexpr size_t kMinCompressRows = 1024;

/// Tries the codecs applicable to the column type and returns the best
/// encoding strictly smaller than the raw tail, or kRaw (empty stream).
ColumnEncoding ProbeResultCodec(const BatPtr& col, size_t nrows,
                                std::vector<uint8_t>* stream) {
  const size_t raw_bytes = nrows * TypeWidth(col->type());
  ColumnEncoding best = ColumnEncoding::kRaw;
  std::vector<uint8_t> attempt;
  if (col->type() == PhysType::kInt32) {
    if (compress::RleEncode(col->TailData<int32_t>(), nrows, &attempt).ok() &&
        attempt.size() < raw_bytes) {
      best = ColumnEncoding::kRle;
      *stream = std::move(attempt);
    }
    attempt.clear();
    if (compress::PdictEncode(col->TailData<int32_t>(), nrows, &attempt)
            .ok() &&
        attempt.size() < raw_bytes &&
        (best == ColumnEncoding::kRaw || attempt.size() < stream->size())) {
      best = ColumnEncoding::kPdict;
      *stream = std::move(attempt);
    }
  } else if (col->type() == PhysType::kInt64) {
    if (compress::Rle64Encode(col->TailData<int64_t>(), nrows, &attempt)
            .ok() &&
        attempt.size() < raw_bytes) {
      best = ColumnEncoding::kRle;
      *stream = std::move(attempt);
    }
  }
  return best;
}

}  // namespace

Result<std::string> EncodeResult(const mal::QueryResult& result,
                                 uint32_t caps,
                                 uint64_t* wire_bytes_saved) {
  std::string out;
  AppendInt<uint32_t>(&out, static_cast<uint32_t>(result.columns.size()));
  const size_t nrows = result.RowCount();
  AppendInt<uint64_t>(&out, nrows);
  for (size_t c = 0; c < result.columns.size(); ++c) {
    const BatPtr& col = result.columns[c];
    if (col == nullptr) return Status::Internal("wire: null result column");
    if (col->Count() != nrows) {
      return Status::Internal("wire: misaligned result columns");
    }
    AppendString(&out, c < result.names.size() ? result.names[c] : "");
    AppendInt<uint8_t>(&out, static_cast<uint8_t>(col->type()));
    // Compressed shipping: only into sessions that negotiated it, only
    // for integer tails big enough to matter, and only when the codec
    // image actually beats the raw bytes.
    std::vector<uint8_t> stream;
    ColumnEncoding enc = ColumnEncoding::kRaw;
    if ((caps & kWireCapCompressedResults) != 0 && !col->IsDenseTail() &&
        nrows >= kMinCompressRows) {
      enc = ProbeResultCodec(col, nrows, &stream);
    }
    if (enc != ColumnEncoding::kRaw) {
      AppendInt<uint8_t>(&out, static_cast<uint8_t>(enc));
      AppendInt<uint64_t>(&out, stream.size());
      out.append(reinterpret_cast<const char*>(stream.data()), stream.size());
      if (wire_bytes_saved != nullptr) {
        *wire_bytes_saved +=
            nrows * TypeWidth(col->type()) - stream.size();
      }
      continue;
    }
    AppendInt<uint8_t>(&out, col->IsDenseTail()
                                 ? static_cast<uint8_t>(ColumnEncoding::kDense)
                                 : static_cast<uint8_t>(ColumnEncoding::kRaw));
    if (col->IsDenseTail()) {
      AppendInt<uint64_t>(&out, col->tseqbase());
    } else if (col->type() == PhysType::kStr) {
      // Re-intern into a compact per-column heap: the slice carries
      // exactly this column's strings, and the offsets we ship are
      // offsets into that slice, so the decoder restores it as-is.
      StringHeap slice;
      std::string offsets;
      offsets.reserve(nrows * sizeof(uint64_t));
      for (size_t i = 0; i < nrows; ++i) {
        AppendInt<uint64_t>(&offsets, slice.Put(col->StringAt(i)));
      }
      AppendInt<uint64_t>(&out, slice.ByteSize());
      out.append(slice.RawBytes(), slice.ByteSize());
      out.append(offsets);
    } else {
      AppendInt<uint64_t>(&out, 0);  // heap_len: none for fixed width
      out.append(
          static_cast<const char*>(
              static_cast<const void*>(col->tail().raw_data())),
          nrows * TypeWidth(col->type()));
    }
  }
  return out;
}

Result<mal::QueryResult> DecodeResult(std::string_view payload) {
  Reader r(payload);
  uint32_t ncols = 0;
  uint64_t nrows = 0;
  if (!r.ReadInt(&ncols) || !r.ReadInt(&nrows)) return Truncated("result");
  // nrows comes off the wire: bound it before any size arithmetic. With
  // nrows <= kMaxPayloadBytes and element widths <= 8, the per-column
  // `nrows * width` products below stay far under SIZE_MAX, so each
  // ReadBytes is an honest bounds check (an unchecked u64 like 2^61
  // would wrap the byte count to 0 and "succeed" on an empty view), and
  // no allocation happens until the bytes are known to be present.
  if (nrows > kMaxPayloadBytes) {
    return Status::InvalidArgument("wire: implausible row count " +
                                   std::to_string(nrows));
  }
  mal::QueryResult result;
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name;
    uint8_t type = 0, enc = 0;
    uint64_t heap_len = 0;
    if (!ReadString(&r, &name) || !r.ReadInt(&type) || !r.ReadInt(&enc) ||
        !r.ReadInt(&heap_len)) {
      return Truncated("result column header");
    }
    if (!ValidType(type)) {
      return Status::InvalidArgument("wire: unknown column type " +
                                     std::to_string(type));
    }
    if (enc > static_cast<uint8_t>(ColumnEncoding::kPdict)) {
      return Status::InvalidArgument("wire: unknown column encoding " +
                                     std::to_string(enc));
    }
    const PhysType pt = static_cast<PhysType>(type);
    const ColumnEncoding encoding = static_cast<ColumnEncoding>(enc);
    BatPtr col;
    if (encoding == ColumnEncoding::kRle ||
        encoding == ColumnEncoding::kPdict) {
      // heap_len slot = codec stream length.
      if (pt != PhysType::kInt32 && pt != PhysType::kInt64) {
        return Status::InvalidArgument(
            "wire: compressed encoding on non-int column");
      }
      std::string_view stream_bytes;
      if (!r.ReadBytes(heap_len, &stream_bytes)) {
        return Truncated("compressed column stream");
      }
      std::vector<uint8_t> stream(stream_bytes.begin(), stream_bytes.end());
      col = Bat::New(pt);
      if (pt == PhysType::kInt32) {
        std::vector<int32_t> values;
        MAMMOTH_RETURN_IF_ERROR(encoding == ColumnEncoding::kRle
                                    ? compress::RleDecode(stream, &values)
                                    : compress::PdictDecode(stream, &values));
        if (values.size() != nrows) {
          return Status::InvalidArgument(
              "wire: compressed column row count mismatch");
        }
        col->AppendRaw(values.data(), values.size());
      } else {
        if (encoding != ColumnEncoding::kRle) {
          return Status::InvalidArgument(
              "wire: pdict encoding on int64 column");
        }
        std::vector<int64_t> values;
        MAMMOTH_RETURN_IF_ERROR(compress::Rle64Decode(stream, &values));
        if (values.size() != nrows) {
          return Status::InvalidArgument(
              "wire: compressed column row count mismatch");
        }
        col->AppendRaw(values.data(), values.size());
      }
    } else if (encoding == ColumnEncoding::kDense) {
      if (pt != PhysType::kOid) {
        return Status::InvalidArgument("wire: dense tail on non-oid column");
      }
      col = Bat::NewDense(heap_len, nrows);  // heap_len slot = tseqbase
    } else if (pt == PhysType::kStr) {
      std::string_view heap_bytes, offset_bytes;
      if (!r.ReadBytes(heap_len, &heap_bytes) ||
          !r.ReadBytes(nrows * sizeof(uint64_t), &offset_bytes)) {
        return Truncated("string column");
      }
      if (nrows > 0 &&
          (heap_len == 0 || heap_bytes[heap_len - 1] != '\0')) {
        return Status::InvalidArgument("wire: unterminated string heap");
      }
      auto heap = std::make_shared<StringHeap>();
      heap->Restore(heap_bytes.data(), heap_bytes.size());
      col = Bat::NewString(heap);
      col->Reserve(nrows);
      for (uint64_t i = 0; i < nrows; ++i) {
        uint64_t off = 0;
        std::memcpy(&off, offset_bytes.data() + i * sizeof(uint64_t),
                    sizeof(uint64_t));
        if (off >= heap_len) {
          return Status::InvalidArgument("wire: string offset out of heap");
        }
        col->tail().Append<uint64_t>(off);
      }
    } else {
      if (heap_len != 0) {
        return Status::InvalidArgument("wire: heap on fixed-width column");
      }
      std::string_view tail_bytes;
      if (!r.ReadBytes(nrows * TypeWidth(pt), &tail_bytes)) {
        return Truncated("column tail");
      }
      col = Bat::New(pt);
      col->AppendRaw(tail_bytes.data(), nrows);
    }
    result.names.push_back(std::move(name));
    result.columns.push_back(std::move(col));
  }
  if (!r.done()) {
    return Status::InvalidArgument("wire: trailing bytes after result");
  }
  return result;
}

}  // namespace mammoth::server
