#include "server/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mammoth::server {

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& o) noexcept
    : fd_(o.fd_),
      hello_(std::move(o.hello_)),
      caps_(o.caps_),
      buffer_(std::move(o.buffer_)),
      next_seq_(o.next_seq_),
      pending_(std::move(o.pending_)),
      done_(std::move(o.done_)) {
  o.fd_ = -1;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    hello_ = std::move(o.hello_);
    caps_ = o.caps_;
    buffer_ = std::move(o.buffer_);
    next_seq_ = o.next_seq_;
    pending_ = std::move(o.pending_);
    done_ = std::move(o.done_);
    o.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &found);
  if (rc != 0 || found == nullptr) {
    return Status::IOError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  Client client;
  client.fd_ = fd;
  MAMMOTH_ASSIGN_OR_RETURN(Frame frame, client.ReadFrame());
  if (frame.type == FrameType::kError) {
    MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(frame.payload));
    return e.ToStatus();
  }
  if (frame.type != FrameType::kHello) {
    return Status::InvalidArgument("expected Hello frame from server");
  }
  MAMMOTH_ASSIGN_OR_RETURN(client.hello_, DecodeHello(frame.payload));
  // Capability negotiation: opt into everything this client understands
  // that the server advertised (compressed results, pipelining,
  // prepared statements, typed parameter metadata).
  client.caps_ =
      client.hello_.caps & (kWireCapCompressedResults | kWireCapPipeline |
                            kWireCapPrepared | kWireCapParamTypes);
  if (client.caps_ != 0) {
    MAMMOTH_RETURN_IF_ERROR(client.WriteAll(
        EncodeFrame(FrameType::kCaps, EncodeCaps(client.caps_))));
  }
  return client;
}

uint32_t Client::NextSeq() {
  const uint32_t seq = next_seq_++;
  if (next_seq_ == 0) next_seq_ = 1;  // 0 is reserved on the wire
  return seq;
}

Status Client::StashTagged(const Frame& frame) {
  MAMMOTH_ASSIGN_OR_RETURN(SeqPayload sp, SplitSeq(frame.payload));
  if (pending_.erase(sp.seq) == 0) {
    return Status::InvalidArgument(
        "server replied to unknown sequence number " +
        std::to_string(sp.seq));
  }
  if (frame.type == FrameType::kResultSeq) {
    done_.emplace(sp.seq, DecodeResult(sp.rest));
  } else {
    MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(sp.rest));
    done_.emplace(sp.seq, e.ToStatus());
  }
  return Status::OK();
}

Result<mal::QueryResult> Client::Query(const std::string& sql) {
  if (fd_ < 0) return Status::IOError("client not connected");
  MAMMOTH_RETURN_IF_ERROR(WriteAll(EncodeFrame(FrameType::kQuery, sql)));
  while (true) {
    MAMMOTH_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    switch (frame.type) {
      case FrameType::kResult:
        return DecodeResult(frame.payload);
      case FrameType::kError: {
        MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(frame.payload));
        return e.ToStatus();
      }
      case FrameType::kResultSeq:
      case FrameType::kErrorSeq:
        // A pipelined response overtaking this plain query: stash it
        // for its own Await.
        MAMMOTH_RETURN_IF_ERROR(StashTagged(frame));
        continue;
      case FrameType::kClose:
        Close();
        return Status::Unavailable("server closed the session");
      default:
        return Status::InvalidArgument("unexpected frame type " +
                                       std::to_string(static_cast<int>(
                                           frame.type)));
    }
  }
}

Result<uint32_t> Client::QueryAsync(const std::string& sql) {
  if (fd_ < 0) return Status::IOError("client not connected");
  if ((caps_ & kWireCapPipeline) == 0) {
    return Status::Unimplemented("server does not support pipelining");
  }
  const uint32_t seq = NextSeq();
  pending_.insert(seq);
  if (Status st = WriteAll(
          EncodeFrame(FrameType::kQuerySeq, PrependSeq(seq, sql)));
      !st.ok()) {
    pending_.erase(seq);
    return st;
  }
  return seq;
}

Result<mal::QueryResult> Client::Await(uint32_t seq) {
  while (true) {
    auto it = done_.find(seq);
    if (it != done_.end()) {
      Result<mal::QueryResult> r = std::move(it->second);
      done_.erase(it);
      return r;
    }
    if (pending_.count(seq) == 0) {
      return Status::InvalidArgument("await on unknown sequence number " +
                                     std::to_string(seq));
    }
    MAMMOTH_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type != FrameType::kResultSeq &&
        frame.type != FrameType::kErrorSeq) {
      return Status::InvalidArgument(
          "unexpected frame type while awaiting a pipelined response");
    }
    MAMMOTH_RETURN_IF_ERROR(StashTagged(frame));
  }
}

Result<PreparedHandle> Client::Prepare(const std::string& sql) {
  if (fd_ < 0) return Status::IOError("client not connected");
  if ((caps_ & kWireCapPrepared) == 0) {
    return Status::Unimplemented(
        "server does not support prepared statements");
  }
  const uint32_t seq = NextSeq();
  MAMMOTH_RETURN_IF_ERROR(
      WriteAll(EncodeFrame(FrameType::kPrepare, PrependSeq(seq, sql))));
  while (true) {
    MAMMOTH_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (frame.type == FrameType::kPrepared ||
        frame.type == FrameType::kErrorSeq) {
      MAMMOTH_ASSIGN_OR_RETURN(SeqPayload sp, SplitSeq(frame.payload));
      if (sp.seq == seq) {
        if (frame.type == FrameType::kErrorSeq) {
          MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(sp.rest));
          return e.ToStatus();
        }
        MAMMOTH_ASSIGN_OR_RETURN(PreparedReply reply,
                                 DecodePrepared(sp.rest));
        return PreparedHandle{reply.stmt_id, reply.nparams,
                              std::move(reply.param_types)};
      }
      if (frame.type == FrameType::kErrorSeq) {
        // An error for some other in-flight pipelined query.
        MAMMOTH_RETURN_IF_ERROR(StashTagged(frame));
        continue;
      }
      return Status::InvalidArgument(
          "prepared reply for wrong sequence number");
    }
    if (frame.type == FrameType::kResultSeq) {
      MAMMOTH_RETURN_IF_ERROR(StashTagged(frame));
      continue;
    }
    if (frame.type == FrameType::kError) {
      MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(frame.payload));
      return e.ToStatus();
    }
    return Status::InvalidArgument(
        "unexpected frame type while awaiting a Prepared reply");
  }
}

Result<uint32_t> Client::ExecutePreparedAsync(
    const PreparedHandle& handle, const std::vector<Value>& params) {
  if (fd_ < 0) return Status::IOError("client not connected");
  if ((caps_ & kWireCapPrepared) == 0) {
    return Status::Unimplemented(
        "server does not support prepared statements");
  }
  const uint32_t seq = NextSeq();
  pending_.insert(seq);
  if (Status st = WriteAll(
          EncodeFrame(FrameType::kExecute,
                      EncodeExecute(seq, handle.stmt_id, params)));
      !st.ok()) {
    pending_.erase(seq);
    return st;
  }
  return seq;
}

Result<mal::QueryResult> Client::ExecutePrepared(
    const PreparedHandle& handle, const std::vector<Value>& params) {
  MAMMOTH_ASSIGN_OR_RETURN(uint32_t seq,
                           ExecutePreparedAsync(handle, params));
  return Await(seq);
}

void Client::Close() {
  if (fd_ < 0) return;
  WriteAll(EncodeFrame(FrameType::kClose, ""));
  ::close(fd_);
  fd_ = -1;
}

Status Client::WriteAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // retry the short write
    if (n <= 0) return Status::IOError("send(): connection lost");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  while (true) {
    Frame frame;
    MAMMOTH_ASSIGN_OR_RETURN(
        size_t consumed, DecodeFrame(buffer_.data(), buffer_.size(), &frame));
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return frame;
    }
    // Short reads are the normal case: keep appending until a frame
    // completes, however the server's writes were segmented.
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired (possibly mid-frame).
      return Status::TimedOut("recv(): response timed out");
    }
    return Status::IOError("connection closed by server");
  }
}

}  // namespace mammoth::server
