#include "server/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace mammoth::server {

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& o) noexcept
    : fd_(o.fd_), hello_(std::move(o.hello_)), buffer_(std::move(o.buffer_)) {
  o.fd_ = -1;
}

Client& Client::operator=(Client&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    hello_ = std::move(o.hello_);
    buffer_ = std::move(o.buffer_);
    o.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &found);
  if (rc != 0 || found == nullptr) {
    return Status::IOError("resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Client client;
  client.fd_ = fd;
  MAMMOTH_ASSIGN_OR_RETURN(Frame frame, client.ReadFrame());
  if (frame.type == FrameType::kError) {
    MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(frame.payload));
    return e.ToStatus();
  }
  if (frame.type != FrameType::kHello) {
    return Status::InvalidArgument("expected Hello frame from server");
  }
  MAMMOTH_ASSIGN_OR_RETURN(client.hello_, DecodeHello(frame.payload));
  // Capability negotiation: when the server can ship compressed result
  // columns, opt in (this client's DecodeResult understands them all).
  if ((client.hello_.caps & kWireCapCompressedResults) != 0) {
    MAMMOTH_RETURN_IF_ERROR(client.WriteAll(EncodeFrame(
        FrameType::kCaps, EncodeCaps(kWireCapCompressedResults))));
  }
  return client;
}

Result<mal::QueryResult> Client::Query(const std::string& sql) {
  if (fd_ < 0) return Status::IOError("client not connected");
  MAMMOTH_RETURN_IF_ERROR(WriteAll(EncodeFrame(FrameType::kQuery, sql)));
  MAMMOTH_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  switch (frame.type) {
    case FrameType::kResult:
      return DecodeResult(frame.payload);
    case FrameType::kError: {
      MAMMOTH_ASSIGN_OR_RETURN(WireError e, DecodeError(frame.payload));
      return e.ToStatus();
    }
    case FrameType::kClose:
      Close();
      return Status::Unavailable("server closed the session");
    default:
      return Status::InvalidArgument("unexpected frame type " +
                                     std::to_string(static_cast<int>(
                                         frame.type)));
  }
}

void Client::Close() {
  if (fd_ < 0) return;
  WriteAll(EncodeFrame(FrameType::kClose, ""));
  ::close(fd_);
  fd_ = -1;
}

Status Client::WriteAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError("send(): connection lost");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  while (true) {
    Frame frame;
    MAMMOTH_ASSIGN_OR_RETURN(
        size_t consumed, DecodeFrame(buffer_.data(), buffer_.size(), &frame));
    if (consumed > 0) {
      buffer_.erase(0, consumed);
      return frame;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IOError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace mammoth::server
