#ifndef MAMMOTH_SERVER_ADMISSION_H_
#define MAMMOTH_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/result.h"
#include "parallel/exec_context.h"

namespace mammoth::server {

struct AdmissionConfig {
  /// Queries running concurrently. 0 is legal (everything times out /
  /// is rejected) and is used by tests to exercise the timeout path.
  int max_inflight = 4;
  /// Queries waiting beyond the in-flight bound; arrivals past this are
  /// rejected immediately (kUnavailable) instead of queueing.
  size_t max_queue = 256;
  /// How long a queued query may wait before it fails with kTimedOut.
  int64_t queue_timeout_ms = 5000;
};

/// Counter snapshot (all values since construction, except the gauges).
struct AdmissionStats {
  uint64_t admitted = 0;      ///< queries granted a slot
  uint64_t timed_out = 0;     ///< queries that waited past the timeout
  uint64_t rejected = 0;      ///< queries bounced on a full queue / shutdown
  uint64_t queued_total = 0;  ///< queries that had to wait at all
  int inflight = 0;           ///< gauge: slots currently held
  int queued = 0;             ///< gauge: waiters currently queued
  int peak_inflight = 0;      ///< high-water mark of `inflight`
};

/// Front-door concurrency control (the Vertica-retrospective lesson that
/// productizing a column store is mostly this): at most `max_inflight`
/// queries execute at once, the rest wait FIFO with a deadline. Each
/// admitted query receives an ExecContext over the shared server
/// TaskPool, so however many sessions are connected, kernel parallelism
/// stays bounded by the one pool (whose ParallelFor calls serialize).
class AdmissionController {
 public:
  /// `pool` (borrowed, may be null for serial execution) backs the
  /// ExecContext handed to every admitted query.
  AdmissionController(const AdmissionConfig& config,
                      parallel::TaskPool* pool)
      : config_(config), ctx_(pool) {}

  /// RAII admission slot: releasing it (destruction) wakes the next
  /// FIFO waiter. Move-only.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : controller_(o.controller_) {
      o.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        Release();
        controller_ = o.controller_;
        o.controller_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    /// Execution context for the admitted query (shared server pool).
    const parallel::ExecContext& context() const {
      return controller_->ctx_;
    }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* c) : controller_(c) {}
    void Release();
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks until a slot is free (FIFO among waiters) or the queue
  /// timeout elapses. Errors: kTimedOut (deadline), kUnavailable (queue
  /// full or controller shut down).
  Result<Ticket> Admit();

  /// Fails all waiters and future Admit() calls with kUnavailable.
  void Shutdown();

  AdmissionStats stats() const;

 private:
  struct Waiter {
    bool granted = false;
    bool abandoned = false;
  };

  /// Grants slots to queued waiters while capacity remains; requires mu_.
  void GrantLocked();
  void Release();

  const AdmissionConfig config_;
  const parallel::ExecContext ctx_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Waiter*> queue_;  // FIFO; entries live on waiter stacks
  bool shutdown_ = false;
  int inflight_ = 0;
  int peak_inflight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t timed_out_ = 0;
  uint64_t rejected_ = 0;
  uint64_t queued_total_ = 0;
};

}  // namespace mammoth::server

#endif  // MAMMOTH_SERVER_ADMISSION_H_
