#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "core/bat.h"
#include "parallel/exec_context.h"
#include "repl/applier.h"
#include "repl/repl_wire.h"
#include "repl/source.h"
#include "server/reactor.h"

namespace mammoth::server {

namespace {

/// Accept/read loops wake at this cadence to observe drain/stop flags,
/// so shutdown latency is bounded even with idle peers.
constexpr int kPollMillis = 100;
constexpr size_t kRecvChunk = 64 * 1024;

/// Per-send() bound on session sockets: a peer that stops reading makes
/// send() fail with EAGAIN after this long instead of wedging the
/// session (and thereby Stop()) forever.
constexpr int kSendTimeoutSec = 5;

/// Uppercased, whitespace-normalized command text (surrounding blanks
/// and a trailing ';' dropped, interior runs collapsed to one space) —
/// shared by the admin-command intercepts below.
std::string NormalizedCommand(const std::string& sql) {
  size_t b = sql.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  size_t e = sql.find_last_not_of(" \t\r\n;");
  std::string t = sql.substr(b, e - b + 1);
  for (char& c : t) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  std::string norm;
  for (char c : t) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!norm.empty() && norm.back() != ' ') norm += ' ';
    } else {
      norm += c;
    }
  }
  return norm;
}

/// True when `sql` is the SERVER STATUS command (case-insensitive,
/// surrounding whitespace and a trailing ';' ignored).
bool IsStatusCommand(const std::string& sql) {
  return NormalizedCommand(sql) == "SERVER STATUS";
}

/// True for the PROMOTE admin command (replica → writable primary).
bool IsPromoteCommand(const std::string& sql) {
  return NormalizedCommand(sql) == "PROMOTE";
}

/// Splits "host:port"; kInvalidArgument when the port is absent or bad.
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    return Status::InvalidArgument("replicate_from: expected host:port, got " +
                                   spec);
  }
  *host = spec.substr(0, colon);
  const long p = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) {
    return Status::InvalidArgument("replicate_from: bad port in " + spec);
  }
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

}  // namespace

Server::Server(const ServerConfig& config)
    : config_(config),
      shared_scans_(config.shared_scan),
      pool_(std::make_unique<parallel::TaskPool>(
          config.threads > 0 ? config.threads
                             : parallel::DefaultThreadCount())),
      admission_(config.admission, pool_.get()) {
  engine_.AttachSharedScans(&shared_scans_);
}

Server::~Server() { Stop(); }

Status Server::OpenDurableStorage() {
  if (config_.db_dir.empty() || storage_opened_) return Status::OK();
  MAMMOTH_ASSIGN_OR_RETURN(
      wal::OpenedDb db,
      wal::OpenDatabase(config_.db_dir, &engine_, config_.db));
  wal_ = std::move(db.wal);
  recovery_info_ = db.info;
  storage_opened_ = true;
  return Status::OK();
}

repl::ReplicationSource* Server::repl_source() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  return repl_source_.get();
}

repl::ReplicaApplier* Server::repl_applier() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  return repl_applier_.get();
}

uint32_t Server::AdvertisedCaps() const {
  uint32_t caps = kWireCapCompressedResults | kWireCapPipeline |
                  kWireCapPrepared | kWireCapParamTypes;
  if (repl_source() != nullptr) caps |= kWireCapReplication;
  return caps;
}

Status Server::AdoptReplica(int fd, uint64_t start_lsn,
                            std::string leftover) {
  repl::ReplicationSource* src = repl_source();
  if (src == nullptr) {
    return Status::Unsupported(
        "repl: this server does not offer replication (no durable "
        "storage, or still a replica)");
  }
  return src->Adopt(fd, start_lsn, std::move(leftover));
}

Result<mal::QueryResult> Server::Promote() {
  std::lock_guard<std::mutex> promote_lock(promote_mu_);
  repl::ReplicaApplier* applier = repl_applier();
  if (applier == nullptr || !replica_role_.load()) {
    return Status::InvalidArgument("PROMOTE: this server is not a replica");
  }
  // Stopping the applier lands on a transaction boundary (transactions
  // apply atomically), so the catalog is exactly the primary's state
  // through replayed_lsn.
  applier->Stop();
  const uint64_t lsn = applier->replayed_lsn();
  const uint64_t next_txn_id = applier->next_txn_id();
  if (!config_.db_dir.empty()) {
    // Become durable: open a fresh WAL whose LSN space continues the
    // primary's, then checkpoint the replayed catalog so the directory
    // is recoverable on its own (and can bootstrap new replicas).
    wal::WalResume resume;
    resume.next_lsn = lsn;
    resume.next_txn_id = next_txn_id;
    MAMMOTH_ASSIGN_OR_RETURN(
        std::unique_ptr<wal::Wal> wal,
        wal::Wal::Open(config_.db_dir, config_.db.wal, resume));
    repl::ReplicationSource::Options ro;
    ro.dir = config_.db_dir;
    ro.semi_sync = config_.repl_semi_sync;
    auto source = std::make_unique<repl::ReplicationSource>(wal.get(), ro);
    {
      // repl_mu_ also covers wal_: stats() snapshots it concurrently.
      std::lock_guard<std::mutex> lock(repl_mu_);
      wal_ = std::move(wal);
      repl_source_ = std::move(source);
    }
    storage_opened_ = true;
    engine_.AttachWal(wal_.get());
    // The engine is still read-only here, but CHECKPOINT is an admin
    // command, not a mutation — it snapshots the catalog as-is.
    MAMMOTH_RETURN_IF_ERROR(engine_.Execute("CHECKPOINT").status());
  }
  engine_.set_read_only(false);
  replica_role_.store(false);
  mal::QueryResult r;
  BatPtr col = Bat::New(PhysType::kInt64);
  col->Append<int64_t>(static_cast<int64_t>(lsn));
  r.names = {"promoted_lsn"};
  r.columns = {std::move(col)};
  return r;
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("server already started");
  }
  if (config_.replicate_from.empty()) {
    if (Status st = OpenDurableStorage(); !st.ok()) {
      started_.store(false);
      return st;
    }
    if (wal_ != nullptr) {
      // Durable primary: accept replica subscriptions and gate commit
      // acknowledgement on the semi-sync barrier.
      repl::ReplicationSource::Options ro;
      ro.dir = config_.db_dir;
      ro.semi_sync = config_.repl_semi_sync;
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_source_ =
          std::make_unique<repl::ReplicationSource>(wal_.get(), ro);
    }
  } else {
    // Replica role: db_dir stays untouched until PROMOTE; the engine is
    // read-only and fed from the primary's WAL stream.
    repl::ReplicaApplier::Options ao;
    if (Status st = ParseHostPort(config_.replicate_from, &ao.host, &ao.port);
        !st.ok()) {
      started_.store(false);
      return st;
    }
    auto applier = std::make_unique<repl::ReplicaApplier>(&engine_, ao);
    if (Status st = applier->Start(); !st.ok()) {
      started_.store(false);
      return st;
    }
    replica_role_.store(true);
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_applier_ = std::move(applier);
  }
  // Installed unconditionally (cheap when no source exists): Promote()
  // creates a source after startup, and the barrier must see it.
  engine_.SetCommitBarrier([this](uint64_t lsn) {
    repl::ReplicationSource* src = repl_source();
    return src != nullptr ? src->WaitForAck(lsn) : Status::OK();
  });
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IOError("socket(): failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparsable host " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind(" + config_.host + ":" +
                           std::to_string(config_.port) +
                           "): " + std::strerror(errno));
  }
  // A deep backlog matters for the reactor: a C10K connect burst must
  // not see ECONNREFUSED just because the loop is mid-tick.
  if (::listen(listen_fd_, 1024) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("listen(): ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  if (config_.frontend == ServerConfig::Frontend::kEpoll) {
    Reactor::Config rc;
    rc.workers = config_.workers > 0
                     ? config_.workers
                     : std::max(2, config_.admission.max_inflight);
    rc.max_pipeline = config_.max_pipeline;
    rc.max_wbuf_bytes = config_.max_wbuf_bytes;
    rc.max_sessions = config_.max_sessions;
    rc.drain_force_millis = config_.drain_force_millis;
    reactor_ = std::make_unique<Reactor>(this, rc);
    if (Status st = reactor_->Start(listen_fd_); !st.ok()) {
      reactor_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      started_.store(false);
      return st;
    }
    return Status::OK();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::BeginDrain() {
  draining_.store(true);
  admission_.Shutdown();
  if (reactor_ != nullptr) reactor_->BeginDrain();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  BeginDrain();
  // The applier stops first (it is a client of someone else's engine);
  // the source stops after the front-end so draining sessions' commits
  // still see the barrier behave normally.
  if (repl::ReplicaApplier* applier = repl_applier(); applier != nullptr) {
    applier->Stop();
  }
  if (reactor_ != nullptr) {
    // The reactor bounds its own drain (drain_force_millis) against
    // non-reading pipelined clients, then closes everything.
    reactor_->Stop();
    if (repl::ReplicationSource* src = repl_source(); src != nullptr) {
      src->Stop();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Sessions notice draining_ within one poll tick, finish their
  // in-flight query (delivering its result), send a final Error frame
  // and exit. The accept loop keeps rejecting new connections with an
  // Error frame for the whole drain window. Past the force deadline,
  // surviving session sockets are shut down so a peer blocked in
  // send()/recv() (e.g. a client that stopped reading its result)
  // cannot wedge shutdown; SO_SNDTIMEO bounds each send regardless.
  const auto force_at =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.drain_force_millis);
  bool forced = false;
  while (sessions_open_.load() > 0) {
    if (!forced && std::chrono::steady_clock::now() >= force_at) {
      forced = true;
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, handle] : sessions_) {
        if (handle.fd >= 0) ::shutdown(handle.fd, SHUT_RDWR);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  ReapFinishedSessions();
  std::vector<std::thread> leftovers;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, handle] : sessions_) {
      leftovers.push_back(std::move(handle.thread));
    }
    sessions_.clear();
    finished_sessions_.clear();
  }
  for (std::thread& t : leftovers) {
    if (t.joinable()) t.join();
  }
  if (repl::ReplicationSource* src = repl_source(); src != nullptr) {
    src->Stop();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::ReapFinishedSessions() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (uint64_t id : finished_sessions_) {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) continue;
      done.push_back(std::move(it->second.thread));
      sessions_.erase(it);
    }
    finished_sessions_.clear();
  }
  // Join outside the lock: these threads have already passed their last
  // sessions_mu_ acquisition, so the joins cannot deadlock and only
  // wait out thread teardown.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::AcceptLoop() {
  while (true) {
    ReapFinishedSessions();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (stopping_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (draining_.load()) {
      ++sessions_rejected_;
      SendError(fd, Status::Unavailable("server draining"));
      ::close(fd);
      continue;
    }
    if (sessions_open_.load() >= config_.max_sessions) {
      ++sessions_rejected_;
      SendError(fd, Status::Unavailable(
                        "session limit (" +
                        std::to_string(config_.max_sessions) + ") reached"));
      ::close(fd);
      continue;
    }
    const uint64_t id = next_session_id_.fetch_add(1);
    ++sessions_total_;
    ++sessions_open_;
    std::lock_guard<std::mutex> lock(sessions_mu_);
    SessionHandle& handle = sessions_[id];
    handle.fd = fd;
    handle.thread = std::thread([this, fd, id] { SessionLoop(fd, id); });
  }
}

void Server::SessionLoop(int fd, uint64_t session_id) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval send_timeout{};
  send_timeout.tv_sec = kSendTimeoutSec;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  HelloInfo hello;
  hello.session_id = session_id;
  hello.server_name = config_.name;
  hello.caps = AdvertisedCaps();
  uint32_t session_caps = 0;
  bool detached = false;  ///< socket handed to the replication source
  // Per-connection engine session: BEGIN/COMMIT/ROLLBACK state lives
  // here; a disconnect mid-transaction rolls it back below.
  sql::SessionPtr engine_session = engine_.CreateSession();
  if (SendFrame(fd, FrameType::kHello, EncodeHello(hello)).ok()) {
    std::string buffer;
    bool alive = true;
    while (alive) {
      // Drain complete frames already buffered before blocking again.
      Frame frame;
      auto consumed = DecodeFrame(buffer.data(), buffer.size(), &frame);
      if (!consumed.ok()) {
        SendError(fd, consumed.status());
        break;
      }
      if (*consumed > 0) {
        buffer.erase(0, *consumed);
        if (frame.type == FrameType::kClose) break;
        if (frame.type == FrameType::kCaps) {
          // Capability negotiation: keep only bits we advertised.
          auto caps = DecodeCaps(frame.payload);
          if (!caps.ok()) {
            SendError(fd, caps.status());
            break;
          }
          session_caps = *caps & hello.caps;
          continue;
        }
        if (frame.type == FrameType::kPrepare) {
          auto sp = SplitSeq(frame.payload);
          if (!sp.ok()) {
            SendError(fd, sp.status());
            break;
          }
          if (!SendBytes(fd, HandlePrepareFrame(sp->seq,
                                                std::string(sp->rest),
                                                session_caps))
                   .ok()) {
            break;
          }
          continue;
        }
        if (frame.type == FrameType::kReplSubscribe) {
          // The subscriber's socket leaves the session machinery: the
          // replication source owns it from here (or the session dies).
          auto sub = repl::DecodeSubscribe(frame.payload);
          if (!sub.ok()) {
            SendError(fd, sub.status());
            break;
          }
          Status adopted =
              AdoptReplica(fd, sub->start_lsn, std::move(buffer));
          if (!adopted.ok()) {
            SendError(fd, adopted);
            break;
          }
          detached = true;
          break;
        }
        // kQuery / kQuerySeq / kExecute. This serial front-end runs each
        // frame to completion before reading the next, so seq-tagged
        // requests cannot overlap here (overlap is the reactor's job);
        // the framing still works, keeping the protocol uniform.
        auto job = DecodeJob(frame);
        if (!job.ok()) {
          SendError(fd, job.status());
          break;
        }
        if (!SendBytes(fd, RunJob(*job, session_caps, engine_session))
                 .ok()) {
          break;
        }
        continue;
      }
      if (draining_.load()) {
        SendError(fd, Status::Unavailable("server draining"));
        break;
      }
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, kPollMillis);
      if (ready < 0) break;
      if (ready == 0) continue;
      char chunk[kRecvChunk];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // peer closed or error
      bytes_in_ += static_cast<uint64_t>(n);
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }
  // A connection dying (or closing) inside BEGIN..COMMIT must not leave
  // pending rows or a write claim behind: auto-rollback.
  engine_.AbortSession(engine_session);
  {
    // Invalidate the handle's fd before closing so Stop()'s forced
    // shutdown() cannot touch a recycled descriptor, and announce
    // completion so the accept loop reaps (joins) this thread.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) it->second.fd = -1;
    finished_sessions_.push_back(session_id);
  }
  if (!detached) ::close(fd);
  --sessions_open_;
}

Result<Server::WireJob> Server::DecodeJob(const Frame& frame) {
  WireJob job;
  switch (frame.type) {
    case FrameType::kQuery:
      job.sql = frame.payload;
      return job;
    case FrameType::kQuerySeq: {
      MAMMOTH_ASSIGN_OR_RETURN(SeqPayload sp, SplitSeq(frame.payload));
      job.seq = sp.seq;
      job.sql = std::string(sp.rest);
      return job;
    }
    case FrameType::kExecute: {
      MAMMOTH_ASSIGN_OR_RETURN(SeqPayload sp, SplitSeq(frame.payload));
      MAMMOTH_ASSIGN_OR_RETURN(ExecuteRequest req, DecodeExecute(sp.rest));
      job.seq = sp.seq;
      job.is_execute = true;
      job.stmt_id = req.stmt_id;
      job.params = std::move(req.params);
      return job;
    }
    default:
      return Status::InvalidArgument("unexpected frame type from client");
  }
}

std::string Server::RunJob(const WireJob& job, uint32_t caps,
                           const sql::SessionPtr& session) {
  // seq 0 = old-protocol untagged response; otherwise the response
  // carries the request's sequence number (out-of-order completion).
  auto respond = [&](FrameType plain, FrameType tagged,
                     std::string_view payload) {
    if (job.seq == 0) return EncodeFrame(plain, payload);
    return EncodeFrame(tagged, PrependSeq(job.seq, payload));
  };
  auto fail = [&](const Status& st) {
    return respond(FrameType::kError, FrameType::kErrorSeq, EncodeError(st));
  };
  if (!job.is_execute && IsStatusCommand(job.sql)) {
    // Introspection answers even under admission pressure.
    auto payload = EncodeResult(StatusResult(stats()));
    if (!payload.ok()) return fail(payload.status());
    return respond(FrameType::kResult, FrameType::kResultSeq, *payload);
  }
  if (!job.is_execute && IsPromoteCommand(job.sql)) {
    // Failover path: must answer even when admission is saturated.
    auto promoted = Promote();
    if (!promoted.ok()) return fail(promoted.status());
    auto payload = EncodeResult(*promoted);
    if (!payload.ok()) return fail(payload.status());
    return respond(FrameType::kResult, FrameType::kResultSeq, *payload);
  }
  auto ticket = admission_.Admit();
  if (!ticket.ok()) {
    // Typed rejection (kTimedOut / kUnavailable); the session survives.
    return fail(ticket.status());
  }
  auto result =
      job.is_execute
          ? engine_.ExecutePreparedSession(session, job.stmt_id, job.params,
                                           ticket->context())
          : engine_.ExecuteSession(session, job.sql, ticket->context());
  if (!result.ok()) {
    ++queries_failed_;
    return fail(result.status());
  }
  uint64_t saved = 0;
  auto payload = EncodeResult(*result, caps, &saved);
  if (!payload.ok()) {
    ++queries_failed_;
    return fail(payload.status());
  }
  wire_result_bytes_saved_ += saved;
  ++queries_ok_;
  return respond(FrameType::kResult, FrameType::kResultSeq, *payload);
}

std::string Server::HandlePrepareFrame(uint32_t seq, const std::string& text,
                                       uint32_t caps) {
  // No admission: preparing is one parse, and clients prepare on the
  // hot path right after connecting.
  auto entry = engine_.Prepare(text);
  if (!entry.ok()) {
    return EncodeFrame(FrameType::kErrorSeq,
                       PrependSeq(seq, EncodeError(entry.status())));
  }
  PreparedReply reply;
  reply.stmt_id = (*entry)->id;
  reply.nparams = (*entry)->nparams;
  {
    // param_types is (re)written under plan_mu by concurrent Prepares
    // of the same text; copy it out under the same lock.
    std::lock_guard<std::mutex> lock((*entry)->plan_mu);
    reply.param_types = (*entry)->param_types;
  }
  return EncodeFrame(FrameType::kPrepared, EncodePrepared(seq, reply, caps));
}

Status Server::SendFrame(int fd, FrameType type, std::string_view payload) {
  return SendBytes(fd, EncodeFrame(type, payload));
}

Status Server::SendBytes(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Includes EAGAIN from SO_SNDTIMEO: a peer that stopped reading
      // forfeits the session rather than wedging it.
      return Status::IOError("send(): connection lost or timed out");
    }
    sent += static_cast<size_t>(n);
    bytes_out_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status Server::SendError(int fd, const Status& error) {
  return SendFrame(fd, FrameType::kError, EncodeError(error));
}

ServerStatsSnapshot Server::stats() const {
  ServerStatsSnapshot s;
  s.sessions_total = sessions_total_.load();
  s.sessions_rejected = sessions_rejected_.load();
  s.queries_ok = queries_ok_.load();
  s.queries_failed = queries_failed_.load();
  s.bytes_in = bytes_in_.load();
  s.bytes_out = bytes_out_.load();
  s.sessions_open = sessions_open_.load();
  s.draining = draining_.load();
  s.admission = admission_.stats();
  s.shared_scans = shared_scans_.stats();
  s.compression = engine_.compression_stats();
  s.recycler = engine_.recycler_stats();
  s.compressed_kernels = compress::GetKernelStats();
  s.txn = engine_.txn_stats();
  s.wire_result_bytes_saved = wire_result_bytes_saved_.load();
  s.prepared = engine_.prepared_stats();
  if (reactor_ != nullptr) {
    s.epoll_sessions = static_cast<uint64_t>(reactor_->sessions_open());
    s.pipelined_in_flight = reactor_->pipelined_in_flight();
  }
  wal::Wal* wal = nullptr;
  {
    // Promote() installs wal_ while sessions run; snapshot under the
    // same lock that guards the replication pointers.
    std::lock_guard<std::mutex> lock(repl_mu_);
    wal = wal_.get();
  }
  if (wal != nullptr) {
    s.durable = true;
    s.wal = wal->stats();
    s.wal_recovered_txns = recovery_info_.txns_applied;
  }
  s.repl_role = replica_role_.load() ? 1 : 0;
  if (repl::ReplicationSource* src = repl_source(); src != nullptr) {
    const repl::ReplicationSource::Stats rs = src->stats();
    s.repl_replicas = rs.replicas;
    s.repl_shipped_lsn = rs.min_shipped_lsn;
    s.repl_acked_lsn = rs.min_acked_lsn;
    s.repl_lag_bytes = rs.lag_bytes;
    s.repl_snapshots += rs.snapshots_served;
  }
  if (repl::ReplicaApplier* applier = repl_applier(); applier != nullptr) {
    const repl::ReplicaApplier::Stats as = applier->stats();
    s.repl_replayed_lsn = as.replayed_lsn;
    s.repl_source_durable_lsn = as.source_durable_lsn;
    s.repl_txns_applied = as.txns_applied;
    s.repl_snapshots += as.snapshots_received;
    if (s.repl_role == 1 && as.source_durable_lsn > as.replayed_lsn) {
      s.repl_lag_bytes = as.source_durable_lsn - as.replayed_lsn;
    }
  }
  return s;
}

mal::QueryResult Server::StatusResult(const ServerStatsSnapshot& s) {
  BatPtr counters = Bat::NewString(nullptr);
  BatPtr values = Bat::New(PhysType::kInt64);
  auto row = [&](std::string_view name, uint64_t value) {
    counters->AppendString(name);
    values->Append<int64_t>(static_cast<int64_t>(value));
  };
  row("wire_version", kWireVersion);
  row("draining", s.draining ? 1 : 0);
  row("sessions_open", static_cast<uint64_t>(s.sessions_open));
  row("sessions_total", s.sessions_total);
  row("sessions_rejected", s.sessions_rejected);
  row("queries_ok", s.queries_ok);
  row("queries_failed", s.queries_failed);
  row("queries_admitted", s.admission.admitted);
  row("queries_queued_total", s.admission.queued_total);
  row("queries_queued_now", static_cast<uint64_t>(s.admission.queued));
  row("queries_inflight", static_cast<uint64_t>(s.admission.inflight));
  row("queries_peak_inflight",
      static_cast<uint64_t>(s.admission.peak_inflight));
  row("queries_timed_out", s.admission.timed_out);
  row("queries_rejected", s.admission.rejected);
  row("bytes_in", s.bytes_in);
  row("bytes_out", s.bytes_out);
  row("shared_scans_attached", s.shared_scans.scans_attached);
  row("shared_scans_direct", s.shared_scans.scans_direct);
  row("shared_chunks_loaded", s.shared_scans.chunks_loaded);
  row("shared_chunks_delivered", s.shared_scans.chunks_delivered);
  row("shared_chunks_skipped", s.shared_scans.chunks_skipped);
  row("shared_loads_saved", s.shared_scans.loads_saved);
  row("shared_chunks_decompressed", s.shared_scans.chunks_decompressed);
  row("shared_bytes_loaded", s.shared_scans.bytes_loaded);
  row("shared_bytes_delivered", s.shared_scans.bytes_delivered);
  row("compressed_tables", s.compression.compressed_tables);
  row("compressed_columns", s.compression.compressed_columns);
  row("compressed_bytes", s.compression.compressed_bytes);
  row("compressed_logical_bytes", s.compression.logical_bytes);
  row("wire_result_bytes_saved", s.wire_result_bytes_saved);
  row("epoll_sessions", s.epoll_sessions);
  row("pipelined_in_flight", s.pipelined_in_flight);
  row("prepared_cache_entries", s.prepared.entries);
  row("prepared_cache_hits", s.prepared.hits);
  row("prepared_cache_misses", s.prepared.misses);
  row("prepared_cache_evictions", s.prepared.evictions);
  row("durable", s.durable ? 1 : 0);
  row("wal_txns", s.wal.txns_logged);
  row("wal_commits_synced", s.wal.commits_synced);
  row("wal_fsyncs", s.wal.fsyncs);
  row("wal_bytes", s.wal.bytes_logged);
  row("wal_checkpoints", s.wal.checkpoints);
  row("wal_durable_lsn", s.wal.durable_lsn);
  row("wal_recovered_txns", s.wal_recovered_txns);
  row("repl_role", s.repl_role);
  row("repl_replicas", s.repl_replicas);
  row("repl_shipped_lsn", s.repl_shipped_lsn);
  row("repl_acked_lsn", s.repl_acked_lsn);
  row("repl_replayed_lsn", s.repl_replayed_lsn);
  row("repl_source_durable_lsn", s.repl_source_durable_lsn);
  row("repl_lag_bytes", s.repl_lag_bytes);
  row("repl_txns_applied", s.repl_txns_applied);
  row("repl_snapshots", s.repl_snapshots);
  row("recycler_compressed_bytes", s.recycler.compressed_bytes);
  row("compressed_kernel_selects", s.compressed_kernels.selects_direct);
  row("compressed_kernel_select_fallbacks",
      s.compressed_kernels.selects_fallback);
  row("compressed_kernel_aggrs", s.compressed_kernels.aggrs_direct);
  row("compressed_kernel_aggr_fallbacks",
      s.compressed_kernels.aggrs_fallback);
  row("compressed_project_bounded", s.compressed_kernels.project_bounded);
  row("compressed_project_full", s.compressed_kernels.project_full);
  row("compressed_cache_bytes", s.compression.cache_bytes);
  row("txn_begun", s.txn.begun);
  row("txn_committed", s.txn.committed);
  row("txn_rolled_back", s.txn.rolled_back);
  row("txn_conflicts", s.txn.conflicts);
  row("txn_active", s.txn.active);
  mal::QueryResult result;
  result.names = {"counter", "value"};
  result.columns = {std::move(counters), std::move(values)};
  return result;
}

}  // namespace mammoth::server
