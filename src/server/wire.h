#ifndef MAMMOTH_SERVER_WIRE_H_
#define MAMMOTH_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/value.h"
#include "mal/interpreter.h"

namespace mammoth::server {

/// The MammothDB wire protocol: a small MAPI-inspired framing layer.
/// MonetDB's MAPI ships query results as text blocks; ours keeps the
/// *columnar* shape of the kernel all the way to the socket — a Result
/// frame is a sequence of typed tail arrays plus compact string-heap
/// slices, never tuple-at-a-time rows.
///
/// Every frame is `Header ++ payload`, header fixed at 12 bytes, all
/// integers little-endian:
///
///   offset  size  field
///   0       4     magic   0x4D4D5448 ("MMTH")
///   4       2     version (kWireVersion; mismatch is a hard error)
///   6       1     frame type (FrameType)
///   7       1     reserved (must be 0)
///   8       4     payload length in bytes (<= kMaxPayloadBytes)
///
/// Conversation: server sends Hello on accept; the client then issues
/// Query frames and receives exactly one Result *or* Error frame per
/// query; Close (either side) ends the session. A server that is
/// draining answers new connections/queries with an Error frame whose
/// status code is kUnavailable; an admission-queue timeout produces
/// kTimedOut.
inline constexpr uint32_t kMagic = 0x4D4D5448;  // "MMTH"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr uint32_t kMaxPayloadBytes = 1u << 28;  // 256 MB
inline constexpr size_t kHeaderBytes = 12;

enum class FrameType : uint8_t {
  kHello = 1,  ///< server -> client: session id + server name
  kQuery = 2,  ///< client -> server: payload is the SQL text
  kResult = 3, ///< server -> client: columnar result set (see below)
  kError = 4,  ///< server -> client: status code + message
  kClose = 5,  ///< either side: end of session (empty payload)
  kCaps = 6,   ///< client -> server: capability bits (u32), after Hello
  // --- pipelined / prepared extension (kWireCapPipeline/-Prepared) ---
  // Every frame below starts its payload with a u32 sequence number the
  // client picked; the matching response carries the same number, so a
  // session may keep many queries in flight and match replies out of
  // order. Sequence number 0 is reserved (hostile) and a number may not
  // be reused while its request is still in flight.
  kQuerySeq = 7,   ///< client -> server: u32 seq ++ SQL text
  kResultSeq = 8,  ///< server -> client: u32 seq ++ Result payload
  kErrorSeq = 9,   ///< server -> client: u32 seq ++ Error payload
  kPrepare = 10,   ///< client -> server: u32 seq ++ statement text
  kPrepared = 11,  ///< server -> client: u32 seq ++ u64 id ++ u32 nparams
  kExecute = 12,   ///< client -> server: u32 seq ++ u64 id ++ params
  // --- replication extension (kWireCapReplication) ---
  // A replica connects like any client, answers Caps, then sends
  // kReplSubscribe; the server detaches the socket from the query
  // front-end and hands it to the ReplicationSource, which owns it for
  // the rest of the session. Payload shapes live in repl/repl_wire.h.
  kReplSubscribe = 13,  ///< replica -> primary: u64 start lsn
  kReplRecords = 14,    ///< primary -> replica: WAL byte range (framed records)
  kReplAck = 15,        ///< replica -> primary: u64 replayed lsn
  kReplSnapBegin = 16,  ///< primary -> replica: snapshot lsn + file count
  kReplFile = 17,       ///< primary -> replica: one snapshot file chunk
  kReplSnapEnd = 18,    ///< primary -> replica: snapshot complete
};

/// Capability bits, negotiated per session: the server advertises its
/// capabilities in Hello; a client that wants one answers with a Caps
/// frame carrying the subset it also supports. A session with no Caps
/// frame runs with zero capabilities — old clients keep working
/// unchanged.
inline constexpr uint32_t kWireCapCompressedResults = 1u << 0;
/// Sequence-numbered frames (kQuerySeq/kResultSeq/kErrorSeq): a session
/// may pipeline queries; responses are tagged and complete out of order.
inline constexpr uint32_t kWireCapPipeline = 1u << 1;
/// kPrepare/kPrepared/kExecute frames backed by the engine's prepared
/// plan cache.
inline constexpr uint32_t kWireCapPrepared = 1u << 2;
/// Replication frames (kReplSubscribe..kReplSnapEnd): the server is a
/// durable primary willing to stream its WAL to subscribers.
inline constexpr uint32_t kWireCapReplication = 1u << 3;
/// kPrepared replies append typed parameter metadata (u8 per placeholder;
/// see PreparedReply::param_types). Sessions without the capability get
/// the original fixed-size reply, byte-identical.
inline constexpr uint32_t kWireCapParamTypes = 1u << 4;

/// A decoded frame (payload still in wire encoding).
struct Frame {
  FrameType type = FrameType::kClose;
  std::string payload;
};

/// Frames `payload` under `type`.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Attempts to decode one frame from the front of [data, data+size).
/// Returns the number of bytes consumed (header + payload) on success,
/// 0 when the buffer does not yet hold a complete frame, or an error
/// Status for a corrupt header (bad magic / version / type / length) —
/// corrupt streams cannot be resynchronized and must be dropped.
Result<size_t> DecodeFrame(const char* data, size_t size, Frame* out);

/// --- Hello ---------------------------------------------------------------
struct HelloInfo {
  uint64_t session_id = 0;
  std::string server_name;
  /// Capability bits the server supports (kWireCap*). Absent in frames
  /// from older servers; the decoder then leaves it 0.
  uint32_t caps = 0;
};
std::string EncodeHello(const HelloInfo& hello);
Result<HelloInfo> DecodeHello(std::string_view payload);

/// --- Caps ----------------------------------------------------------------
std::string EncodeCaps(uint32_t caps);
Result<uint32_t> DecodeCaps(std::string_view payload);

/// --- Error ---------------------------------------------------------------
/// Error payloads carry the StatusCode as a typed byte, so clients can
/// distinguish e.g. an admission timeout (kTimedOut) from a SQL error.
std::string EncodeError(const Status& error);
/// Decodes an Error payload back into the Status it encodes.
/// (Returned inside a wrapper: Result<Status> would conflate transport
/// failure with the transported error.)
struct WireError {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  Status ToStatus() const { return Status(code, message); }
};
Result<WireError> DecodeError(std::string_view payload);

/// --- Sequence numbers ------------------------------------------------------
/// All FrameType values >= kQuerySeq prefix their payload with a u32
/// sequence number; the rest of the payload keeps the shape of the
/// corresponding plain frame (kQuerySeq rest = SQL text, kResultSeq rest
/// = Result payload, kErrorSeq rest = Error payload).
std::string PrependSeq(uint32_t seq, std::string_view rest);
struct SeqPayload {
  uint32_t seq = 0;
  std::string_view rest;  ///< view into the input payload
};
Result<SeqPayload> SplitSeq(std::string_view payload);

/// --- Prepare / Execute -----------------------------------------------------
/// kPrepared response body (after the seq prefix): the server-assigned
/// statement id and how many `?` parameters the statement takes. For
/// sessions that negotiated kWireCapParamTypes the body is followed by
/// `u32 ntypes` and one ParamType byte per placeholder; older sessions
/// receive the original fixed-size body unchanged.
enum class ParamType : uint8_t {
  kUnknown = 0,  ///< no typed context (e.g. HAVING literal)
  kInt = 1,
  kReal = 2,
  kStr = 3,
};
struct PreparedReply {
  uint64_t stmt_id = 0;
  uint32_t nparams = 0;
  /// One entry per placeholder when the session negotiated
  /// kWireCapParamTypes (ParamType values); empty otherwise.
  std::vector<uint8_t> param_types;
};
std::string EncodePrepared(uint32_t seq, const PreparedReply& reply,
                           uint32_t caps = 0);
Result<PreparedReply> DecodePrepared(std::string_view rest);

/// kExecute body (after the seq prefix): u64 stmt_id, u16 nparams, then
/// each parameter as a typed value — u8 kind (0 nil, 1 int, 2 real,
/// 3 string), int/real as fixed 8-byte little-endian, strings as
/// u32 length + bytes.
std::string EncodeExecute(uint32_t seq, uint64_t stmt_id,
                          const std::vector<Value>& params);
struct ExecuteRequest {
  uint64_t stmt_id = 0;
  std::vector<Value> params;
};
Result<ExecuteRequest> DecodeExecute(std::string_view rest);

/// --- Result --------------------------------------------------------------
/// Columnar result encoding:
///
///   u32 ncols, u64 nrows
///   per column:
///     u16 name_len, name bytes
///     u8  phys type (PhysType)
///     u8  encoding (ColumnEncoding below)
///     raw:     u64 heap_len (= 0), nrows x TypeWidth(type) tail bytes
///     dense:   u64 tseqbase                      (no tail array)
///     string:  u64 heap_len, heap bytes,         (compact slice: only the
///              nrows x u64 offsets into it        strings this column uses)
///     rle/pdict: u64 stream_len, stream bytes    (compress/ codec image)
///
/// The encoding byte generalizes the old dense flag (0/1 wire images are
/// byte-identical to protocol sessions that predate it). The compressed
/// encodings (2, 3) are only emitted for sessions that negotiated
/// kWireCapCompressedResults, and only when the codec image is strictly
/// smaller than the raw tail; int32 columns may ship as RLE or PDICT,
/// int64 as RLE.
///
/// The string-heap slice is rebuilt per column by interning the column's
/// values into a fresh heap, so the frame never leaks unrelated strings
/// from the (shared, table-wide) source heap, and the decoder restores
/// it zero-copy: heap bytes + offsets are usable as-is.
enum class ColumnEncoding : uint8_t {
  kRaw = 0,
  kDense = 1,
  kRle = 2,
  kPdict = 3,
};

/// Encodes a result for a session holding `caps`. When `wire_bytes_saved`
/// is non-null, it accumulates the bytes the compressed column encodings
/// saved relative to raw tails (0 without the capability).
Result<std::string> EncodeResult(const mal::QueryResult& result,
                                 uint32_t caps = 0,
                                 uint64_t* wire_bytes_saved = nullptr);
Result<mal::QueryResult> DecodeResult(std::string_view payload);

}  // namespace mammoth::server

#endif  // MAMMOTH_SERVER_WIRE_H_
