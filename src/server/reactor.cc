#include "server/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "repl/repl_wire.h"
#include "server/server.h"

namespace mammoth::server {

namespace {

/// epoll_event user-data keys for the two non-connection fds.
constexpr uint64_t kListenKey = UINT64_MAX;
constexpr uint64_t kWakeKey = UINT64_MAX - 1;

/// Loop tick: bounds how late the loop notices drain/stop flags.
constexpr int kTickMillis = 100;
constexpr size_t kRecvChunk = 64 * 1024;

/// Compact the flushed prefix of a write buffer once it passes this.
constexpr size_t kWoffCompact = 1u << 20;

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

/// Best-effort error delivery to a connection we refuse to keep: the
/// socket is fresh, so one small frame fits the send buffer.
void RejectSync(int fd, const Status& error) {
  const std::string frame = EncodeFrame(FrameType::kError, EncodeError(error));
  (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  ::close(fd);
}

}  // namespace

Reactor::Reactor(Server* server, const Config& config)
    : server_(server), config_(config) {}

Reactor::~Reactor() { Stop(); }

Status Reactor::Start(int listen_fd) {
  if (started_.exchange(true)) {
    return Status::InvalidArgument("reactor already started");
  }
  listen_fd_ = listen_fd;
  MAMMOTH_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1(): ") +
                           std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError(std::string("eventfd(): ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeKey;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  const int nworkers = std::max(1, config_.workers);
  workers_.reserve(static_cast<size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Reactor::BeginDrain() {
  draining_.store(true);
  Wake();
}

void Reactor::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  draining_.store(true);
  stop_requested_.store(true);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void Reactor::Wake() {
  uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void Reactor::Loop() {
  std::vector<epoll_event> events(512);
  auto force_at = std::chrono::steady_clock::time_point::max();
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), kTickMillis);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const uint64_t key = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (key == kListenKey) {
        Accept();
        continue;
      }
      if (key == kWakeKey) {
        uint64_t buf;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        continue;  // completions are applied below every pass
      }
      auto it = conns_.find(key);
      if (it == conns_.end()) continue;  // closed earlier this pass
      Conn* conn = it->second.get();
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(key);
        continue;
      }
      if ((ev & EPOLLIN) != 0) {
        HandleReadable(conn);  // may close: re-find before EPOLLOUT
        it = conns_.find(key);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      if ((ev & EPOLLOUT) != 0) FlushConn(conn);
    }
    ApplyCompletions();
    if (draining_.load()) {
      // Snapshot ids: DrainNotify can close (erase) idle connections.
      std::vector<uint64_t> ids;
      ids.reserve(conns_.size());
      for (const auto& [id, conn] : conns_) {
        if (!conn->drain_notified) ids.push_back(id);
      }
      for (uint64_t id : ids) {
        auto it = conns_.find(id);
        if (it != conns_.end()) DrainNotify(it->second.get());
      }
    }
    if (stop_requested_.load()) {
      const auto now = std::chrono::steady_clock::now();
      if (force_at == std::chrono::steady_clock::time_point::max()) {
        force_at =
            now + std::chrono::milliseconds(config_.drain_force_millis);
      }
      if (conns_.empty()) break;
      if (now >= force_at) {
        // Bounded shutdown: surviving connections (pipelined clients
        // that stopped reading their responses) are dropped with their
        // buffers.
        std::vector<uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, conn] : conns_) ids.push_back(id);
        for (uint64_t id : ids) CloseConn(id);
        break;
      }
    }
  }
}

void Reactor::Accept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    if (draining_.load()) {
      ++server_->sessions_rejected_;
      RejectSync(fd, Status::Unavailable("server draining"));
      continue;
    }
    if (static_cast<int>(conns_.size()) >= config_.max_sessions) {
      ++server_->sessions_rejected_;
      RejectSync(fd, Status::Unavailable(
                         "session limit (" +
                         std::to_string(config_.max_sessions) + ") reached"));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = server_->next_session_id_.fetch_add(1);
    ++server_->sessions_total_;
    ++server_->sessions_open_;
    ++sessions_open_;
    auto owned = std::make_unique<Conn>();
    Conn* conn = owned.get();
    conn->fd = fd;
    conn->id = id;
    conn->session = server_->engine_.CreateSession();
    conns_[id] = std::move(owned);
    HelloInfo hello;
    hello.session_id = id;
    hello.server_name = server_->config_.name;
    hello.caps = server_->AdvertisedCaps();
    conn->wbuf = EncodeFrame(FrameType::kHello, EncodeHello(hello));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    conn->events = EPOLLIN;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    FlushConn(conn);
  }
}

int Reactor::PipelineDepth(const Conn* conn) {
  return static_cast<int>(conn->inflight.size() +
                          conn->plain_backlog.size() +
                          (conn->plain_inflight ? 1 : 0));
}

void Reactor::HandleReadable(Conn* conn) {
  const uint64_t id = conn->id;
  while (!conn->want_close && !draining_.load() &&
         PipelineDepth(conn) < config_.max_pipeline) {
    char chunk[kRecvChunk];
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      server_->bytes_in_ += static_cast<uint64_t>(n);
      conn->rbuf.append(chunk, static_cast<size_t>(n));
      if (!ProcessBuffer(conn)) {
        CloseConn(id);
        return;
      }
      if (static_cast<size_t>(n) < sizeof(chunk)) break;  // drained
      continue;
    }
    if (n == 0) {  // peer closed; pending responses have no reader
      CloseConn(id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(id);
    return;
  }
  FlushConn(conn);  // also recomputes epoll interest; may close
}

bool Reactor::ProcessBuffer(Conn* conn) {
  while (!conn->want_close &&
         PipelineDepth(conn) < config_.max_pipeline) {
    Frame frame;
    auto consumed =
        DecodeFrame(conn->rbuf.data(), conn->rbuf.size(), &frame);
    if (!consumed.ok()) {
      FatalError(conn, consumed.status());
      return true;
    }
    if (*consumed == 0) break;  // incomplete frame: wait for more bytes
    conn->rbuf.erase(0, *consumed);
    switch (frame.type) {
      case FrameType::kClose:
        conn->want_close = true;
        break;
      case FrameType::kCaps: {
        auto caps = DecodeCaps(frame.payload);
        if (!caps.ok()) {
          FatalError(conn, caps.status());
          return true;
        }
        conn->caps = *caps & server_->AdvertisedCaps();
        break;
      }
      case FrameType::kPrepare: {
        // Answered inline on the loop thread: preparing is one parse,
        // cheaper than a queue round-trip.
        auto sp = SplitSeq(frame.payload);
        if (!sp.ok()) {
          FatalError(conn, sp.status());
          return true;
        }
        if (!AppendOut(conn, server_->HandlePrepareFrame(
                                 sp->seq, std::string(sp->rest),
                                 conn->caps))) {
          return false;
        }
        break;
      }
      case FrameType::kReplSubscribe: {
        auto sub = repl::DecodeSubscribe(frame.payload);
        if (!sub.ok()) {
          FatalError(conn, sub.status());
          return true;
        }
        if (conn->plain_inflight || !conn->inflight.empty()) {
          FatalError(conn, Status::InvalidArgument(
                               "repl: subscribe with requests in flight"));
          return true;
        }
        // Detach: the replication source takes the socket over. Flush
        // anything still buffered first (normally nothing — the Hello
        // went out at accept) so the subscriber sees frames in order.
        while (conn->woff < conn->wbuf.size()) {
          pollfd pfd{conn->fd, POLLOUT, 0};
          if (::poll(&pfd, 1, 1000) <= 0) break;
          const ssize_t n = ::send(conn->fd, conn->wbuf.data() + conn->woff,
                                   conn->wbuf.size() - conn->woff,
                                   MSG_NOSIGNAL);
          if (n > 0) {
            conn->woff += static_cast<size_t>(n);
            server_->bytes_out_ += static_cast<uint64_t>(n);
            continue;
          }
          if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                        errno == EWOULDBLOCK)) {
            continue;
          }
          break;
        }
        const int fd = conn->fd;
        std::string leftover = std::move(conn->rbuf);
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        conns_.erase(conn->id);
        --sessions_open_;
        --server_->sessions_open_;
        if (Status adopted = server_->AdoptReplica(fd, sub->start_lsn,
                                                   std::move(leftover));
            !adopted.ok()) {
          RejectSync(fd, adopted);
        }
        // The Conn is gone; the caller's CloseConn(id) no-ops.
        return false;
      }
      default: {
        auto job = server_->DecodeJob(frame);
        if (!job.ok()) {
          FatalError(conn, job.status());
          return true;
        }
        if (job->seq == 0) {
          // Old-protocol ordering: plain queries run one at a time per
          // connection, responses in request order.
          if (conn->plain_inflight) {
            conn->plain_backlog.push_back(std::move(job->sql));
          } else {
            Task task;
            task.sql = std::move(job->sql);
            Submit(conn, std::move(task));
          }
        } else {
          if (!conn->inflight.insert(job->seq).second) {
            FatalError(conn,
                       Status::InvalidArgument(
                           "wire: duplicate in-flight sequence number " +
                           std::to_string(job->seq)));
            return true;
          }
          Task task;
          task.tagged = true;
          task.seq = job->seq;
          task.is_execute = job->is_execute;
          task.sql = std::move(job->sql);
          task.stmt_id = job->stmt_id;
          task.params = std::move(job->params);
          Submit(conn, std::move(task));
        }
        break;
      }
    }
  }
  return true;
}

void Reactor::Submit(Conn* conn, Task task) {
  task.conn_id = conn->id;
  task.caps = conn->caps;
  task.session = conn->session;
  if (task.tagged) {
    ++pipelined_;
  } else {
    conn->plain_inflight = true;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void Reactor::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (task.abort_session) {
      server_->engine_.AbortSession(task.session);
      continue;
    }
    Server::WireJob job;
    job.seq = task.seq;
    job.is_execute = task.is_execute;
    job.sql = std::move(task.sql);
    job.stmt_id = task.stmt_id;
    job.params = std::move(task.params);
    Completion done;
    done.conn_id = task.conn_id;
    done.seq = task.seq;
    done.tagged = task.tagged;
    done.bytes = server_->RunJob(job, task.caps, task.session);
    if (task.tagged) --pipelined_;
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(done));
    }
    Wake();
  }
}

void Reactor::ApplyCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-flight
    Conn* conn = it->second.get();
    if (c.tagged) {
      conn->inflight.erase(c.seq);
    } else {
      conn->plain_inflight = false;
      if (!conn->plain_backlog.empty() && !conn->want_close) {
        Task task;
        task.sql = std::move(conn->plain_backlog.front());
        conn->plain_backlog.pop_front();
        Submit(conn, std::move(task));
      }
    }
    if (!AppendOut(conn, c.bytes)) continue;  // dropped: slow consumer
    // The freed pipeline slot may unpark frames already buffered.
    if (!ProcessBuffer(conn)) {
      CloseConn(c.conn_id);
      continue;
    }
    FlushConn(conn);
  }
}

bool Reactor::AppendOut(Conn* conn, std::string_view bytes) {
  conn->wbuf.append(bytes);
  if (conn->wbuf.size() - conn->woff > config_.max_wbuf_bytes) {
    CloseConn(conn->id);  // slow consumer: unread backlog past the cap
    return false;
  }
  return true;
}

void Reactor::FlushConn(Conn* conn) {
  while (conn->woff < conn->wbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wbuf.data() + conn->woff,
               conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<size_t>(n);
      server_->bytes_out_ += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConn(conn->id);
    return;
  }
  if (conn->woff >= conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->woff = 0;
  } else if (conn->woff > kWoffCompact) {
    conn->wbuf.erase(0, conn->woff);
    conn->woff = 0;
  }
  if (conn->want_close && conn->wbuf.empty() && conn->inflight.empty() &&
      !conn->plain_inflight && conn->plain_backlog.empty()) {
    CloseConn(conn->id);
    return;
  }
  UpdateEvents(conn);
}

void Reactor::UpdateEvents(Conn* conn) {
  uint32_t desired = 0;
  if (!conn->want_close && !draining_.load() &&
      PipelineDepth(conn) < config_.max_pipeline) {
    desired |= EPOLLIN;
  }
  if (conn->woff < conn->wbuf.size()) desired |= EPOLLOUT;
  if (desired == conn->events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->events = desired;
}

void Reactor::FatalError(Conn* conn, const Status& error) {
  // Protocol violation: answer with one final untagged Error frame and
  // close once it (and any pending responses) flushed.
  (void)AppendOut(conn,
                  EncodeFrame(FrameType::kError, EncodeError(error)));
  conn->want_close = true;
}

void Reactor::DrainNotify(Conn* conn) {
  conn->drain_notified = true;
  conn->want_close = true;
  if (AppendOut(conn, EncodeFrame(FrameType::kError,
                                  EncodeError(Status::Unavailable(
                                      "server draining"))))) {
    FlushConn(conn);
  }
}

void Reactor::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  // Disconnect auto-rollback: an open transaction must not outlive its
  // connection. Runs on a worker — it serializes behind any in-flight
  // statement of this session, which must not stall the loop thread.
  if (conn->session != nullptr && conn->session->in_transaction()) {
    Task abort;
    abort.abort_session = true;
    abort.session = conn->session;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.push_back(std::move(abort));
    }
    queue_cv_.notify_one();
  }
  conns_.erase(it);
  --sessions_open_;
  --server_->sessions_open_;
}

}  // namespace mammoth::server
