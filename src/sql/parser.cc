#include "sql/parser.h"

#include <algorithm>
#include <cctype>

#include "sql/lexer.h"

namespace mammoth::sql {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (IsKeyword("SELECT")) return ParseSelect();
    if (IsKeyword("CREATE")) return ParseCreate();
    if (IsKeyword("INSERT")) return ParseInsert();
    if (IsKeyword("DELETE")) return ParseDelete();
    if (IsKeyword("UPDATE")) return ParseUpdate();
    if (IsKeyword("ALTER")) return ParseAlter();
    if (AcceptKeyword("BEGIN")) {
      AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
      MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
      return Statement{BeginStmt{}};
    }
    if (AcceptKeyword("START")) {
      MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("TRANSACTION"));
      MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
      return Statement{BeginStmt{}};
    }
    if (AcceptKeyword("COMMIT")) {
      AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
      MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
      return Statement{CommitStmt{}};
    }
    if (AcceptKeyword("ROLLBACK")) {
      AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
      MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
      return Statement{RollbackStmt{}};
    }
    return Status::InvalidArgument(
        "expected SELECT/CREATE/INSERT/DELETE/UPDATE/ALTER/"
        "BEGIN/COMMIT/ROLLBACK");
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }

  bool IsKeyword(const char* kw) const {
    return Cur().kind == TokKind::kIdent && Upper(Cur().text) == kw;
  }

  bool AcceptKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  bool AcceptSymbol(const char* s) {
    if (!Cur().IsSymbol(s)) return false;
    Advance();
    return true;
  }

  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Status::InvalidArgument(std::string("expected '") + s + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Cur().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected identifier");
    }
    std::string name = Lower(Cur().text);
    Advance();
    return name;
  }

  Result<ColumnRef> ExpectColumnRef() {
    ColumnRef ref;
    MAMMOTH_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    if (AcceptSymbol(".")) {
      ref.table = std::move(first);
      MAMMOTH_ASSIGN_OR_RETURN(ref.column, ExpectIdent());
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  Result<Value> ExpectLiteral() {
    const Token& t = Cur();
    if (t.IsSymbol("?")) {
      // Prepared-statement placeholder: ordinals assigned left to right.
      Value v = Value::Param(nparams_++);
      Advance();
      return v;
    }
    switch (t.kind) {
      case TokKind::kInt: {
        Value v = Value::Int(t.int_val);
        Advance();
        return v;
      }
      case TokKind::kReal: {
        Value v = Value::Real(t.real_val);
        Advance();
        return v;
      }
      case TokKind::kString: {
        Value v = Value::Str(t.text);
        Advance();
        return v;
      }
      default:
        return Status::InvalidArgument("expected literal");
    }
  }

 public:
  /// Number of `?` placeholders consumed (valid after ParseStatement).
  uint32_t nparams() const { return nparams_; }

 private:

  Result<CmpOp> ExpectCmpOp() {
    static constexpr std::pair<const char*, CmpOp> kOps[] = {
        {"=", CmpOp::kEq},  {"!=", CmpOp::kNe}, {"<=", CmpOp::kLe},
        {">=", CmpOp::kGe}, {"<", CmpOp::kLt},  {">", CmpOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (Cur().IsSymbol(sym)) {
        Advance();
        return op;
      }
    }
    return Status::InvalidArgument("expected comparison operator");
  }

  /// Parses a select-list label for HAVING/ORDER BY: a (possibly
  /// qualified) column or AGG(col) / COUNT(*), rendered in the canonical
  /// SelectItem::Label() form.
  Result<std::string> ParseLabel() {
    MAMMOTH_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    const std::string up = Upper(first);
    const bool is_agg = up == "SUM" || up == "COUNT" || up == "MIN" ||
                        up == "MAX" || up == "AVG";
    if (is_agg && Cur().IsSymbol("(")) {
      Advance();
      std::string inner;
      if (AcceptSymbol("*")) {
        inner = "*";
      } else {
        MAMMOTH_ASSIGN_OR_RETURN(ColumnRef ref, ExpectColumnRef());
        inner = ref.ToString();
      }
      MAMMOTH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Lower(first) + "(" + inner + ")";
    }
    if (AcceptSymbol(".")) {
      MAMMOTH_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      return first + "." + col;
    }
    return first;
  }

  Result<std::vector<Predicate>> ParseWhere() {
    std::vector<Predicate> out;
    do {
      Predicate p;
      MAMMOTH_ASSIGN_OR_RETURN(p.column, ExpectColumnRef());
      if (AcceptKeyword("LIKE")) {
        p.op = CmpOp::kLike;
        MAMMOTH_ASSIGN_OR_RETURN(p.literal, ExpectLiteral());
        if (!p.literal.is_str() && !p.literal.is_param()) {
          return Status::InvalidArgument("LIKE needs a string pattern");
        }
        out.push_back(std::move(p));
        continue;
      }
      MAMMOTH_ASSIGN_OR_RETURN(p.op, ExpectCmpOp());
      if (Cur().kind == TokKind::kIdent) {
        // column op column: an equi-join condition.
        if (p.op != CmpOp::kEq) {
          return Status::Unimplemented("only equi-join predicates supported");
        }
        p.is_join = true;
        MAMMOTH_ASSIGN_OR_RETURN(p.rhs_column, ExpectColumnRef());
      } else {
        MAMMOTH_ASSIGN_OR_RETURN(p.literal, ExpectLiteral());
      }
      out.push_back(std::move(p));
    } while (AcceptKeyword("AND"));
    return out;
  }

  Result<Statement> ParseSelect() {
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    do {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.star = true;
      } else {
        MAMMOTH_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        const std::string up = Upper(name);
        AggFn agg = AggFn::kNone;
        if (up == "SUM") agg = AggFn::kSum;
        if (up == "COUNT") agg = AggFn::kCount;
        if (up == "MIN") agg = AggFn::kMin;
        if (up == "MAX") agg = AggFn::kMax;
        if (up == "AVG") agg = AggFn::kAvg;
        if (agg != AggFn::kNone && Cur().IsSymbol("(")) {
          Advance();
          item.agg = agg;
          if (AcceptSymbol("*")) {
            if (agg != AggFn::kCount) {
              return Status::InvalidArgument("only COUNT(*) takes *");
            }
          } else {
            MAMMOTH_ASSIGN_OR_RETURN(item.column, ExpectColumnRef());
          }
          MAMMOTH_RETURN_IF_ERROR(ExpectSymbol(")"));
        } else if (AcceptSymbol(".")) {
          item.column.table = name;
          MAMMOTH_ASSIGN_OR_RETURN(item.column.column, ExpectIdent());
        } else {
          item.column.column = name;
        }
      }
      stmt.items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    do {
      MAMMOTH_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
      stmt.tables.push_back(std::move(table));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("WHERE")) {
      MAMMOTH_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    if (AcceptKeyword("GROUP")) {
      MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        MAMMOTH_ASSIGN_OR_RETURN(ColumnRef col, ExpectColumnRef());
        stmt.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("HAVING")) {
      do {
        HavingPred h;
        MAMMOTH_ASSIGN_OR_RETURN(h.label, ParseLabel());
        MAMMOTH_ASSIGN_OR_RETURN(h.op, ExpectCmpOp());
        MAMMOTH_ASSIGN_OR_RETURN(h.literal, ExpectLiteral());
        stmt.having.push_back(std::move(h));
      } while (AcceptKeyword("AND"));
    }
    if (AcceptKeyword("ORDER")) {
      MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderKey key;
        MAMMOTH_ASSIGN_OR_RETURN(key.label, ParseLabel());
        if (AcceptKeyword("DESC")) {
          key.desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Cur().kind != TokKind::kInt || Cur().int_val < 0) {
        return Status::InvalidArgument("LIMIT expects a non-negative int");
      }
      stmt.limit = Cur().int_val;
      Advance();
    }
    MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseCreate() {
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateStmt stmt;
    MAMMOTH_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    MAMMOTH_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      ColumnDef def;
      MAMMOTH_ASSIGN_OR_RETURN(def.name, ExpectIdent());
      MAMMOTH_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
      const std::string up = Upper(type_name);
      if (up == "TINYINT") {
        def.type = PhysType::kInt8;
      } else if (up == "SMALLINT") {
        def.type = PhysType::kInt16;
      } else if (up == "INT" || up == "INTEGER") {
        def.type = PhysType::kInt32;
      } else if (up == "BIGINT" || up == "LONG") {
        def.type = PhysType::kInt64;
      } else if (up == "DOUBLE" || up == "REAL" || up == "FLOAT") {
        def.type = PhysType::kDouble;
      } else if (up == "VARCHAR" || up == "TEXT" || up == "STRING") {
        def.type = PhysType::kStr;
        if (AcceptSymbol("(")) {  // VARCHAR(n): length ignored
          if (Cur().kind == TokKind::kInt) Advance();
          MAMMOTH_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
      } else {
        return Status::InvalidArgument("unknown type " + type_name);
      }
      stmt.columns.push_back(std::move(def));
    } while (AcceptSymbol(","));
    MAMMOTH_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (AcceptKeyword("COMPRESSED")) stmt.compressed = true;
    MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseAlter() {
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("ALTER"));
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    AlterStmt stmt;
    MAMMOTH_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (AcceptKeyword("COMPRESS")) {
      stmt.compress = true;
    } else if (AcceptKeyword("DECOMPRESS")) {
      stmt.compress = false;
    } else {
      return Status::InvalidArgument("expected COMPRESS or DECOMPRESS");
    }
    MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseInsert() {
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    MAMMOTH_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      MAMMOTH_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      do {
        MAMMOTH_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        row.push_back(std::move(v));
      } while (AcceptSymbol(","));
      MAMMOTH_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDelete() {
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    MAMMOTH_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    if (AcceptKeyword("WHERE")) {
      MAMMOTH_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseUpdate() {
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    UpdateStmt stmt;
    MAMMOTH_ASSIGN_OR_RETURN(stmt.table, ExpectIdent());
    MAMMOTH_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      std::string col;
      MAMMOTH_ASSIGN_OR_RETURN(col, ExpectIdent());
      MAMMOTH_RETURN_IF_ERROR(ExpectSymbol("="));
      MAMMOTH_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
      stmt.sets.emplace_back(std::move(col), std::move(v));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) {
      MAMMOTH_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    MAMMOTH_RETURN_IF_ERROR(ExpectEndOfStatement());
    return Statement{std::move(stmt)};
  }

  Status ExpectEndOfStatement() {
    AcceptSymbol(";");
    if (Cur().kind != TokKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing tokens: " +
                                     Cur().text);
    }
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  uint32_t nparams_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql, uint32_t* nparams) {
  MAMMOTH_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(sql));
  Parser parser(std::move(toks));
  MAMMOTH_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  if (nparams != nullptr) {
    *nparams = parser.nparams();
  } else if (parser.nparams() > 0) {
    return Status::InvalidArgument(
        "'?' parameters are only allowed in prepared statements");
  }
  return stmt;
}

}  // namespace mammoth::sql
