#ifndef MAMMOTH_SQL_PARSER_H_
#define MAMMOTH_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace mammoth::sql {

/// Parses one SQL statement (trailing ';' optional). Supported grammar:
///
///   CREATE TABLE t (col TYPE, ...)
///   INSERT INTO t VALUES (lit, ...) [, (lit, ...)]*
///   DELETE FROM t [WHERE conj]
///   UPDATE t SET col = lit [, col = lit]* [WHERE conj]
///   SELECT item [, item]* FROM t [, t2] [WHERE conj]
///     [GROUP BY col [, col]*] [HAVING label op lit [AND ...]]
///     [ORDER BY label [ASC|DESC] [, ...]] [LIMIT n]
///
///   item := * | [t.]col | SUM|MIN|MAX|AVG ([t.]col) | COUNT (* | [t.]col)
///   conj := [t.]col (= | != | < | <= | > | >=) (literal | [t.]col) [AND ...]
///           (column = column terms are equi-join conditions)
///   TYPE := TINYINT|SMALLINT|INT|INTEGER|BIGINT|LONG|DOUBLE|REAL|FLOAT|
///           VARCHAR[(n)]|TEXT|STRING
///
/// Every literal position also accepts `?`, a prepared-statement
/// parameter placeholder (ordinals assigned left to right). When
/// `nparams` is null, a statement containing placeholders is rejected —
/// placeholders are only meaningful under PREPARE; callers preparing a
/// statement pass a non-null `nparams` to receive the placeholder count.
Result<Statement> Parse(const std::string& sql, uint32_t* nparams = nullptr);

}  // namespace mammoth::sql

#endif  // MAMMOTH_SQL_PARSER_H_
