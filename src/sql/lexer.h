#ifndef MAMMOTH_SQL_LEXER_H_
#define MAMMOTH_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mammoth::sql {

/// Token kinds of the mini-SQL dialect.
enum class TokKind : uint8_t {
  kIdent,    // column / table / keyword (keywords resolved by the parser)
  kInt,      // 123
  kReal,     // 1.5
  kString,   // 'text'
  kSymbol,   // ( ) , ; * = != <> < <= > >= ? .
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // raw text; idents upper-cased separately by parser
  int64_t int_val = 0;
  double real_val = 0;

  bool IsSymbol(const char* s) const {
    return kind == TokKind::kSymbol && text == s;
  }
};

/// Splits `input` into tokens. Errors on unterminated strings and unknown
/// characters.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace mammoth::sql

#endif  // MAMMOTH_SQL_LEXER_H_
