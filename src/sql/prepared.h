#ifndef MAMMOTH_SQL_PREPARED_H_
#define MAMMOTH_SQL_PREPARED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mal/program.h"
#include "sql/ast.h"

namespace mammoth::sql {

/// One cached prepared statement: the parameter-marked AST is parsed once
/// at PREPARE time; for SELECTs the compiled + optimized MAL plan (still
/// carrying `?` placeholders in its consts) is cached alongside it, so
/// EXECUTE skips both the SQL parser and SQL→MAL compilation. The plan is
/// stamped with the engine's catalog version and lazily recompiled when a
/// DDL/DML statement has bumped it since — the same wholesale
/// invalidation discipline the recycler uses (recycle/recycler.h).
struct PreparedStatement {
  uint64_t id = 0;
  std::string key;  ///< normalized statement text (cache key)
  uint32_t nparams = 0;
  Statement ast;  ///< parameter-marked; immutable after creation

  /// Per-placeholder type metadata (wire::ParamType values, one per
  /// ordinal), inferred from the AST against the catalog at PREPARE time:
  /// INSERT placeholders by column position, WHERE/SET placeholders by
  /// the column they compare against, HAVING ones unknown. Advisory — a
  /// best-effort hint for clients; binding still type-checks the values.
  std::vector<uint8_t> param_types;

  /// Guards the compiled-plan slot (sessions executing the same prepared
  /// statement race on recompilation after an invalidation).
  std::mutex plan_mu;
  bool has_plan = false;
  mal::Program plan;          ///< SELECT only: optimized, placeholders intact
  uint64_t plan_version = 0;  ///< catalog version the plan was built against
};

struct PreparedStats {
  uint64_t entries = 0;  ///< gauge: statements currently cached
  uint64_t hits = 0;     ///< cached AST/plan reused as-is
  uint64_t misses = 0;   ///< text compiled fresh or stale plan rebuilt
  uint64_t evictions = 0;
};

/// The per-engine prepared-statement cache: normalized statement text →
/// entry, bounded by an LRU capacity. Two sessions preparing the same
/// statement text share one entry (and one compiled plan). Thread-safe;
/// entries are handed out as shared_ptr so an eviction never invalidates
/// an execution already in flight.
class PreparedCache {
 public:
  explicit PreparedCache(size_t capacity = 128) : capacity_(capacity) {}

  /// Finds the entry for `text` (normalized), parsing and inserting a new
  /// one when absent. Reuse counts a hit, creation a miss (+ possibly an
  /// eviction).
  Result<std::shared_ptr<PreparedStatement>> GetOrPrepare(
      const std::string& text);

  /// Entry by statement id; kNotFound once evicted or never prepared.
  Result<std::shared_ptr<PreparedStatement>> Lookup(uint64_t id);

  /// Named-statement surface (`PREPARE name AS ...` / `EXECUTE name`).
  /// Re-binding a name points it at the new statement.
  void BindName(const std::string& name, uint64_t id);
  Result<uint64_t> ResolveName(const std::string& name) const;

  /// Plan-staleness accounting for the engine's EXECUTE path.
  void CountHit() { ++hits_; }
  void CountMiss() { ++misses_; }

  void set_capacity(size_t capacity);
  PreparedStats stats() const;

 private:
  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_id_ = 1;
  uint64_t lru_tick_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<PreparedStatement>> by_id_;
  std::unordered_map<std::string, uint64_t> by_key_;
  std::unordered_map<uint64_t, uint64_t> last_used_;  // id -> tick
  std::unordered_map<std::string, uint64_t> names_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Replaces every `?` placeholder in the program's instruction constants
/// with the matching value from `params`. Errors on an out-of-range
/// ordinal or a nil parameter (kernels cannot compare against nil).
Status SubstituteProgram(mal::Program* prog, const std::vector<Value>& params);

/// Same, over every literal position of a parsed statement (WHERE /
/// HAVING literals, INSERT rows, UPDATE SET values).
Status SubstituteStatement(Statement* stmt, const std::vector<Value>& params);

}  // namespace mammoth::sql

#endif  // MAMMOTH_SQL_PREPARED_H_
