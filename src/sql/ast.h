#ifndef MAMMOTH_SQL_AST_H_
#define MAMMOTH_SQL_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "core/table.h"
#include "core/value.h"

namespace mammoth::sql {

/// Aggregate functions of the SELECT list.
enum class AggFn : uint8_t { kNone, kSum, kCount, kMin, kMax, kAvg };

/// A possibly table-qualified column reference ("t.col" or "col").
struct ColumnRef {
  std::string table;  // empty = unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
  bool empty() const { return column.empty(); }
};

/// One SELECT-list item: a bare column, AGG(column), or COUNT(*).
struct SelectItem {
  AggFn agg = AggFn::kNone;
  ColumnRef column;   // empty column for COUNT(*)
  bool star = false;  // SELECT * (expands to all columns)
  std::string Label() const;
};

/// A conjunctive WHERE term: either `column op literal` or, when
/// `is_join`, the equi-join condition `column = rhs_column`.
struct Predicate {
  ColumnRef column;
  CmpOp op = CmpOp::kEq;
  Value literal;
  bool is_join = false;
  ColumnRef rhs_column;
};

/// A HAVING term: select-list label (e.g. "sum(v)") op literal.
struct HavingPred {
  std::string label;
  CmpOp op = CmpOp::kEq;
  Value literal;
};

/// One ORDER BY key: a select-list label plus direction.
struct OrderKey {
  std::string label;
  bool desc = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<std::string> tables;  // one or two (comma join)
  std::vector<Predicate> where;     // ANDed
  std::vector<ColumnRef> group_by;
  std::vector<HavingPred> having;   // ANDed, post-aggregation
  std::vector<OrderKey> order_by;   // lexicographic, leftmost major
  int64_t limit = -1;  // -1 = none
};

struct CreateStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  bool compressed = false;  // CREATE TABLE ... COMPRESSED
};

/// ALTER TABLE t COMPRESS | DECOMPRESS: toggles the table's compression
/// policy and converts eligible int columns in place.
struct AlterStmt {
  std::string table;
  bool compress = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;
};

struct DeleteStmt {
  std::string table;
  std::vector<Predicate> where;  // empty = delete all
};

/// UPDATE t SET col = literal [, ...] [WHERE ...]. Updates are executed the
/// MonetDB way: qualifying rows are deleted and re-inserted with the new
/// values through the delta machinery (row OIDs are not stable).
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> sets;
  std::vector<Predicate> where;
};

/// BEGIN [TRANSACTION|WORK]: opens an explicit multi-statement
/// transaction on the executing session.
struct BeginStmt {};

/// COMMIT [TRANSACTION|WORK]: makes the open transaction's writes visible
/// and durable (one group-commit WAL batch).
struct CommitStmt {};

/// ROLLBACK [TRANSACTION|WORK]: discards the open transaction's writes.
struct RollbackStmt {};

using Statement = std::variant<SelectStmt, CreateStmt, InsertStmt,
                               DeleteStmt, UpdateStmt, AlterStmt,
                               BeginStmt, CommitStmt, RollbackStmt>;

}  // namespace mammoth::sql

#endif  // MAMMOTH_SQL_AST_H_
