#include "sql/engine.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "core/project.h"
#include "core/select.h"
#include "core/sort.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "wal/db.h"
#include "wal/record.h"
#include "wal/wal.h"

namespace mammoth::sql {

namespace {

/// Matches the CHECKPOINT admin command (case-insensitive, surrounding
/// whitespace ignored) — intercepted before the SQL parser, like the
/// server's SERVER STATUS.
bool IsCheckpointCommand(const std::string& statement) {
  std::string t;
  for (char c : statement) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      t.push_back(static_cast<char>(std::toupper(c)));
    }
  }
  return t == "CHECKPOINT";
}

/// Upper-cased first bare word of a statement, used to route the
/// PREPARE / EXECUTE surface before the regular parser.
std::string FirstWord(const std::string& statement) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  std::string w;
  while (i < statement.size() &&
         (std::isalpha(static_cast<unsigned char>(statement[i])) ||
          statement[i] == '_')) {
    w.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(statement[i]))));
    ++i;
  }
  return w;
}

mal::OpCode AggOpCode(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return mal::OpCode::kAggrSum;
    case AggFn::kCount:
      return mal::OpCode::kAggrCount;
    case AggFn::kMin:
      return mal::OpCode::kAggrMin;
    case AggFn::kMax:
      return mal::OpCode::kAggrMax;
    case AggFn::kAvg:
      return mal::OpCode::kAggrAvg;
    case AggFn::kNone:
      break;
  }
  return mal::OpCode::kAggrCount;
}

// Wire-level parameter type codes (server/wire.h ParamType), duplicated
// as raw values so sql/ stays below the server layer.
constexpr uint8_t kParamUnknown = 0;
constexpr uint8_t kParamInt = 1;
constexpr uint8_t kParamReal = 2;
constexpr uint8_t kParamStr = 3;

uint8_t WireParamType(PhysType t) {
  if (t == PhysType::kStr) return kParamStr;
  if (t == PhysType::kDouble || t == PhysType::kFloat) return kParamReal;
  return kParamInt;
}

/// Best-effort placeholder typing for the kPrepared reply: INSERT
/// placeholders take the type of their column position, WHERE / SET
/// placeholders the type of the column they compare against. HAVING
/// placeholders (aggregate outputs) and anything unresolvable stay
/// kUnknown — the metadata is advisory; binding still type-checks.
std::vector<uint8_t> InferParamTypes(const Statement& stmt, Catalog* catalog,
                                     uint32_t nparams) {
  std::vector<uint8_t> types(nparams, kParamUnknown);
  if (nparams == 0) return types;
  auto note = [&](const Value& v, uint8_t t) {
    if (v.is_param() && v.param_index() < types.size()) {
      types[v.param_index()] = t;
    }
  };
  auto column_type = [&](const std::vector<std::string>& tables,
                         const ColumnRef& ref) -> uint8_t {
    for (const std::string& name : tables) {
      if (!ref.table.empty() && ref.table != name) continue;
      Result<TablePtr> t = catalog->Get(name);
      if (!t.ok()) continue;
      Result<size_t> idx = (*t)->ColumnIndex(ref.column);
      if (!idx.ok()) continue;
      return WireParamType((*t)->schema()[*idx].type);
    }
    return kParamUnknown;
  };
  if (const auto* sel = std::get_if<SelectStmt>(&stmt)) {
    for (const Predicate& p : sel->where) {
      if (!p.is_join) note(p.literal, column_type(sel->tables, p.column));
    }
  } else if (const auto* ins = std::get_if<InsertStmt>(&stmt)) {
    Result<TablePtr> t = catalog->Get(ins->table);
    if (t.ok()) {
      const std::vector<ColumnDef>& schema = (*t)->schema();
      for (const std::vector<Value>& row : ins->rows) {
        for (size_t c = 0; c < row.size() && c < schema.size(); ++c) {
          note(row[c], WireParamType(schema[c].type));
        }
      }
    }
  } else if (const auto* del = std::get_if<DeleteStmt>(&stmt)) {
    for (const Predicate& p : del->where) {
      note(p.literal, column_type({del->table}, p.column));
    }
  } else if (const auto* upd = std::get_if<UpdateStmt>(&stmt)) {
    for (const auto& [col, v] : upd->sets) {
      note(v, column_type({upd->table}, ColumnRef{"", col}));
    }
    for (const Predicate& p : upd->where) {
      note(p.literal, column_type({upd->table}, p.column));
    }
  }
  return types;
}

}  // namespace

Session::Session() = default;
Session::~Session() = default;

Engine::Engine() : catalog_(std::make_shared<Catalog>()) {
  default_session_ = CreateSession();
}

SessionPtr Engine::CreateSession() {
  SessionPtr s = std::make_shared<Session>();
  s->id_ = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Result<mal::Program> Engine::Compile(const SelectStmt& stmt) const {
  if (stmt.tables.empty() || stmt.tables.size() > 2) {
    return Status::Unimplemented("FROM supports one or two tables");
  }
  std::vector<TablePtr> tables;
  for (const std::string& name : stmt.tables) {
    MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(name));
    tables.push_back(std::move(t));
  }
  const bool is_join_query = tables.size() == 2;

  // Resolves a (possibly qualified) column reference to (table idx, name).
  struct Resolved {
    size_t table;
    std::string column;
    bool operator==(const Resolved&) const = default;
  };
  auto resolve = [&](const ColumnRef& ref) -> Result<Resolved> {
    if (!ref.table.empty()) {
      for (size_t t = 0; t < tables.size(); ++t) {
        if (stmt.tables[t] == ref.table) {
          MAMMOTH_RETURN_IF_ERROR(
              tables[t]->ColumnIndex(ref.column).status());
          return Resolved{t, ref.column};
        }
      }
      return Status::NotFound("table " + ref.table + " not in FROM");
    }
    size_t found = tables.size();
    for (size_t t = 0; t < tables.size(); ++t) {
      if (tables[t]->ColumnIndex(ref.column).ok()) {
        if (found != tables.size()) {
          return Status::InvalidArgument("ambiguous column " + ref.column);
        }
        found = t;
      }
    }
    if (found == tables.size()) {
      return Status::NotFound("no column named " + ref.column);
    }
    return Resolved{found, ref.column};
  };

  // Expand SELECT * and validate shape.
  std::vector<SelectItem> items;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t t = 0; t < tables.size(); ++t) {
        for (const ColumnDef& def : tables[t]->schema()) {
          SelectItem col;
          col.column.column = def.name;
          if (is_join_query) col.column.table = stmt.tables[t];
          items.push_back(std::move(col));
        }
      }
    } else {
      items.push_back(item);
    }
  }
  bool has_agg = false, has_plain = false;
  for (const SelectItem& item : items) {
    (item.agg == AggFn::kNone ? has_plain : has_agg) = true;
    if (!item.column.empty()) {
      MAMMOTH_RETURN_IF_ERROR(resolve(item.column).status());
    }
  }
  if (has_agg && has_plain && stmt.group_by.empty()) {
    return Status::InvalidArgument(
        "mixing aggregates and plain columns needs GROUP BY");
  }
  std::vector<Resolved> group_cols;
  for (const ColumnRef& g : stmt.group_by) {
    MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(g));
    group_cols.push_back(std::move(r));
  }
  if (!group_cols.empty()) {
    for (const SelectItem& item : items) {
      if (item.agg != AggFn::kNone) continue;
      MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(item.column));
      if (std::find(group_cols.begin(), group_cols.end(), r) ==
          group_cols.end()) {
        return Status::InvalidArgument("column " + item.column.ToString() +
                                       " not in GROUP BY");
      }
    }
  }

  // Split WHERE into per-table filters and the join condition.
  std::vector<std::vector<const Predicate*>> local(tables.size());
  const Predicate* join_pred = nullptr;
  Resolved join_lhs{0, ""}, join_rhs{0, ""};
  for (const Predicate& p : stmt.where) {
    if (p.is_join) {
      MAMMOTH_ASSIGN_OR_RETURN(Resolved lhs, resolve(p.column));
      MAMMOTH_ASSIGN_OR_RETURN(Resolved rhs, resolve(p.rhs_column));
      if (!is_join_query || lhs.table == rhs.table) {
        return Status::Unimplemented(
            "join predicate must connect the two FROM tables");
      }
      if (join_pred != nullptr) {
        return Status::Unimplemented("only one join predicate supported");
      }
      join_pred = &p;
      // Normalize: lhs on table 0.
      if (lhs.table == 0) {
        join_lhs = lhs;
        join_rhs = rhs;
      } else {
        join_lhs = rhs;
        join_rhs = lhs;
      }
    } else {
      MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(p.column));
      local[r.table].push_back(&p);
    }
  }
  if (is_join_query && join_pred == nullptr) {
    return Status::Unimplemented(
        "two-table queries need an equi-join predicate (no cross products)");
  }

  mal::Program prog;
  std::map<std::pair<size_t, std::string>, int> bound, projected, joined;
  auto bind = [&](size_t t, const std::string& col) {
    auto key = std::make_pair(t, col);
    auto it = bound.find(key);
    if (it != bound.end()) return it->second;
    const int v = prog.Bind(stmt.tables[t], col);
    bound.emplace(key, v);
    return v;
  };

  // Per-table WHERE: a chain of theta-selects over the shrinking candidate
  // list — the column-at-a-time evaluation of a conjunction (§3), pushed
  // below the join. The optimizer's SelectFusion collapses >=/<= pairs.
  std::vector<int> cands(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    cands[t] = prog.BindCandidates(stmt.tables[t]);
    for (const Predicate* p : local[t]) {
      MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(p->column));
      cands[t] = prog.ThetaSelect(bind(t, r.column), cands[t], p->literal,
                                  p->op);
    }
  }

  // The pre-join projection of a column: values of the selected rows.
  auto project_local = [&](size_t t, const std::string& col) {
    auto key = std::make_pair(t, col);
    auto it = projected.find(key);
    if (it != projected.end()) return it->second;
    const int v = prog.Project(cands[t], bind(t, col));
    projected.emplace(key, v);
    return v;
  };

  // Join: build the join index over the filtered key columns, then map
  // every later column fetch through it (§4.3's join-index + projection).
  int jl = -1, jr = -1;
  if (is_join_query) {
    const int lkey = project_local(0, join_lhs.column);
    const int rkey = project_local(1, join_rhs.column);
    std::tie(jl, jr) = prog.Join(lkey, rkey);
  }

  // The post-join image of a column, aligned with the join result.
  auto project_value = [&](const Resolved& r) {
    if (!is_join_query) return project_local(r.table, r.column);
    auto key = std::make_pair(r.table, r.column);
    auto it = joined.find(key);
    if (it != joined.end()) return it->second;
    const int base = project_local(r.table, r.column);
    const int v = prog.Project(r.table == 0 ? jl : jr, base);
    joined.emplace(key, v);
    return v;
  };
  // Variable whose count equals the output row count (for COUNT(*)).
  const int rows_var = is_join_query ? jl : cands[0];

  if (!group_cols.empty()) {
    int groups = -1, extents = -1, ngroups = -1;
    for (const Resolved& g : group_cols) {
      std::tie(groups, extents, ngroups) =
          prog.Group(project_value(g), groups, ngroups);
    }
    for (const SelectItem& item : items) {
      if (item.agg == AggFn::kNone) {
        MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(item.column));
        prog.Result(prog.Project(extents, project_value(r)), item.Label());
      } else if (item.agg == AggFn::kCount && item.column.empty()) {
        prog.Result(
            prog.Aggr(mal::OpCode::kAggrCount, groups, groups, ngroups),
            item.Label());
      } else {
        MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(item.column));
        prog.Result(prog.Aggr(AggOpCode(item.agg), project_value(r), groups,
                              ngroups),
                    item.Label());
      }
    }
  } else if (has_agg) {
    for (const SelectItem& item : items) {
      if (item.agg == AggFn::kCount && item.column.empty()) {
        prog.Result(prog.Aggr(mal::OpCode::kAggrCount, rows_var, -1, -1),
                    item.Label());
      } else {
        MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(item.column));
        prog.Result(
            prog.Aggr(AggOpCode(item.agg), project_value(r), -1, -1),
            item.Label());
      }
    }
  } else {
    for (const SelectItem& item : items) {
      MAMMOTH_ASSIGN_OR_RETURN(Resolved r, resolve(item.column));
      prog.Result(project_value(r), item.Label());
    }
  }
  return prog;
}

Result<mal::QueryResult> Engine::RunSelect(const SelectStmt& stmt,
                                           const parallel::ExecContext& ctx,
                                           const txn::Snapshot& snap) {
  MAMMOTH_ASSIGN_OR_RETURN(mal::Program prog, Compile(stmt));
  mal::PipelineReport opt_report;
  if (optimize_) opt_report = mal::OptimizePipeline(&prog);
  {
    std::lock_guard<std::mutex> lock(intro_mu_);
    last_opt_ = opt_report;
  }
  return RunCompiledSelect(std::move(prog), stmt, ctx, snap);
}

Result<mal::QueryResult> Engine::RunCompiledSelect(
    mal::Program prog, const SelectStmt& stmt,
    const parallel::ExecContext& ctx, const txn::Snapshot& snap) {
  std::string plan = prog.ToString();
  // Route base-table scans through the attached shared-scan scheduler
  // (if any) unless the caller's context already carries one.
  parallel::ExecContext run_ctx = ctx;
  if (shared_scans_ != nullptr && ctx.shared_scans() == nullptr) {
    run_ctx = ctx.WithSharedScans(shared_scans_);
  }
  mal::Interpreter interp(catalog_.get(), recycler_, run_ctx, snap);
  mal::RunStats run_stats;
  {
    std::lock_guard<std::mutex> lock(intro_mu_);
    last_plan_ = std::move(plan);
  }
  MAMMOTH_ASSIGN_OR_RETURN(mal::QueryResult result,
                           interp.Run(prog, &run_stats));
  {
    std::lock_guard<std::mutex> lock(intro_mu_);
    last_stats_ = run_stats;
  }

  auto find_label = [&](const std::string& label) -> Result<size_t> {
    for (size_t i = 0; i < result.names.size(); ++i) {
      if (result.names[i] == label) return i;
    }
    return Status::InvalidArgument("column " + label +
                                   " is not in the select list");
  };

  // HAVING: post-aggregation filtering, evaluated with the same select
  // kernels over the materialized result columns.
  if (!stmt.having.empty()) {
    BatPtr cands;  // null = all result rows
    for (const HavingPred& h : stmt.having) {
      MAMMOTH_ASSIGN_OR_RETURN(size_t idx, find_label(h.label));
      MAMMOTH_ASSIGN_OR_RETURN(
          cands, algebra::ThetaSelect(result.columns[idx], cands, h.literal,
                                      h.op, ctx));
    }
    for (BatPtr& col : result.columns) {
      MAMMOTH_ASSIGN_OR_RETURN(col, algebra::Project(cands, col, ctx));
    }
  }

  // ORDER BY: lexicographic re-ordering via the RefineSort chain, major
  // key first — each subsequent key only sorts inside the tie groups the
  // previous keys left, instead of re-sorting the whole table per key.
  if (!stmt.order_by.empty()) {
    BatPtr order, ties;
    for (const OrderKey& key : stmt.order_by) {
      MAMMOTH_ASSIGN_OR_RETURN(size_t idx, find_label(key.label));
      MAMMOTH_ASSIGN_OR_RETURN(
          algebra::RefineSortResult r,
          algebra::RefineSort(result.columns[idx], order, ties, key.desc,
                              ctx));
      order = std::move(r.order);
      ties = std::move(r.tie_groups);
      if (r.ngroups == order->Count()) break;  // order is already total
    }
    for (BatPtr& col : result.columns) {
      MAMMOTH_ASSIGN_OR_RETURN(col, algebra::Project(order, col, ctx));
    }
  }
  // LIMIT: positional slice — O(k) thanks to the dense-head design.
  if (stmt.limit >= 0 &&
      static_cast<size_t>(stmt.limit) < result.RowCount()) {
    const BatPtr slice =
        Bat::NewDense(0, static_cast<size_t>(stmt.limit));
    for (BatPtr& col : result.columns) {
      MAMMOTH_ASSIGN_OR_RETURN(col, algebra::Project(slice, col, ctx));
    }
  }
  // Snapshot rule (see engine.h): string result columns share the
  // table's StringHeap, which a later INSERT may append to (and
  // reallocate) once the shared lock is gone — re-intern them into
  // private compact heaps so the result is immutable.
  for (BatPtr& col : result.columns) {
    if (col == nullptr || col->type() != PhysType::kStr) continue;
    BatPtr detached = Bat::NewString(nullptr);
    detached->Reserve(col->Count());
    for (size_t i = 0; i < col->Count(); ++i) {
      detached->AppendString(col->StringAt(i));
    }
    detached->set_hseqbase(col->hseqbase());
    detached->mutable_props() = col->props();
    col = std::move(detached);
  }
  return result;
}

Status Engine::RunCreate(const CreateStmt& stmt, wal::TxnBuilder* txn) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t,
                           Table::Create(stmt.table, stmt.columns));
  MAMMOTH_RETURN_IF_ERROR(catalog_->Register(t));
  txn->CreateTable(stmt.table, stmt.columns);
  if (stmt.compressed) {
    // CREATE TABLE ... COMPRESSED: the table is empty, so this just arms
    // the policy (MergeDeltas compresses eligible columns as rows arrive).
    MAMMOTH_RETURN_IF_ERROR(t->SetCompression(true));
    txn->SetCompression(stmt.table, true);
  }
  return Status::OK();
}

Status Engine::RunAlter(const AlterStmt& stmt, wal::TxnBuilder* txn) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(stmt.table));
  MAMMOTH_RETURN_IF_ERROR(t->SetCompression(stmt.compress));
  txn->SetCompression(stmt.table, stmt.compress);
  return Status::OK();
}

Status Engine::ClaimTable(WriteCtx* w, const TablePtr& t) {
  if (!t->AcquireWrite(w->txn_id)) {
    tm_.CountConflict();
    return Status::Conflict("table " + t->name() +
                            " is write-locked by another transaction");
  }
  if (w->session != nullptr) {
    for (const auto& [claimed, mark] : w->session->write_set_) {
      if (claimed.get() == t.get()) return Status::OK();
    }
    // First contact in this transaction: the mark taken here is what
    // ROLLBACK restores (everything this txn will do to `t` comes after).
    w->session->write_set_.emplace_back(t, t->Mark());
  } else {
    for (const TablePtr& claimed : w->touched) {
      if (claimed.get() == t.get()) return Status::OK();
    }
    w->touched.push_back(t);
  }
  return Status::OK();
}

Status Engine::RunInsert(const InsertStmt& stmt, wal::TxnBuilder* txn,
                         WriteCtx* w) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(stmt.table));
  MAMMOTH_RETURN_IF_ERROR(ClaimTable(w, t));
  // Statement atomicity: rows are appended one at a time, so a failure on
  // the Nth row (arity/kind mismatch) must not leave rows 1..N-1 behind.
  const Table::DeltaMark mark = t->Mark();
  for (const std::vector<Value>& row : stmt.rows) {
    Status st = t->Insert(row, w->stamp);
    if (!st.ok()) {
      t->Rollback(mark);
      return st;
    }
  }
  txn->InsertRows(stmt.table, t->schema(), stmt.rows);
  return Status::OK();
}

Status Engine::RunDelete(const DeleteStmt& stmt, wal::TxnBuilder* txn,
                         WriteCtx* w) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(stmt.table));
  MAMMOTH_RETURN_IF_ERROR(ClaimTable(w, t));
  if (stmt.where.empty()) {
    BatPtr all = t->VisibleCandidates(w->snap);
    MAMMOTH_RETURN_IF_ERROR(t->Delete(all, w->stamp, &w->snap));
    txn->DeletePositions(stmt.table, *all);
    return Status::OK();
  }
  // Evaluate the predicate with the select machinery: the qualifying
  // candidate list *is* the deletion list. The interpreter reads through
  // the statement's snapshot, so only visible rows are targeted.
  mal::Program prog;
  int cands = prog.BindCandidates(stmt.table);
  for (const Predicate& p : stmt.where) {
    if (p.is_join) {
      return Status::InvalidArgument("DELETE predicates must be literal");
    }
    if (!p.column.table.empty() && p.column.table != stmt.table) {
      return Status::NotFound("table " + p.column.table + " not in DELETE");
    }
    MAMMOTH_RETURN_IF_ERROR(t->ColumnIndex(p.column.column).status());
    const int col = prog.Bind(stmt.table, p.column.column);
    cands = prog.ThetaSelect(col, cands, p.literal, p.op);
  }
  prog.Result(cands, "oids");
  mal::Interpreter interp(catalog_.get(), nullptr,
                          parallel::ExecContext::Default(), w->snap);
  MAMMOTH_ASSIGN_OR_RETURN(mal::QueryResult r, interp.Run(prog, nullptr));
  MAMMOTH_RETURN_IF_ERROR(t->Delete(r.columns[0], w->stamp, &w->snap));
  txn->DeletePositions(stmt.table, *r.columns[0]);
  return Status::OK();
}

Status Engine::RunUpdate(const UpdateStmt& stmt, wal::TxnBuilder* txn,
                         WriteCtx* w) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(stmt.table));
  MAMMOTH_RETURN_IF_ERROR(ClaimTable(w, t));
  // Resolve SET targets and validate value kinds.
  std::vector<std::pair<size_t, Value>> sets;
  for (const auto& [col, value] : stmt.sets) {
    MAMMOTH_ASSIGN_OR_RETURN(size_t idx, t->ColumnIndex(col));
    const bool is_str_col = t->schema()[idx].type == PhysType::kStr;
    if (is_str_col != value.is_str()) {
      return Status::TypeMismatch("UPDATE " + col + ": value kind mismatch");
    }
    sets.emplace_back(idx, value);
  }

  // Qualifying rows: the same candidate machinery as DELETE.
  BatPtr oids;
  if (stmt.where.empty()) {
    oids = t->VisibleCandidates(w->snap);
  } else {
    mal::Program prog;
    int cands = prog.BindCandidates(stmt.table);
    for (const Predicate& p : stmt.where) {
      if (p.is_join) {
        return Status::InvalidArgument("UPDATE predicates must be literal");
      }
      MAMMOTH_RETURN_IF_ERROR(t->ColumnIndex(p.column.column).status());
      const int col = prog.Bind(stmt.table, p.column.column);
      cands = prog.ThetaSelect(col, cands, p.literal, p.op);
    }
    prog.Result(cands, "oids");
    mal::Interpreter interp(catalog_.get(), nullptr,
                            parallel::ExecContext::Default(), w->snap);
    MAMMOTH_ASSIGN_OR_RETURN(mal::QueryResult r, interp.Run(prog, nullptr));
    oids = r.columns[0];
  }
  if (oids->Count() == 0) return Status::OK();

  // MonetDB-style update: re-insert the modified image, delete the old
  // rows (both through the delta BATs).
  std::vector<BatPtr> columns;
  for (size_t c = 0; c < t->NumColumns(); ++c) {
    MAMMOTH_ASSIGN_OR_RETURN(BatPtr col, t->ScanColumn(c));
    columns.push_back(std::move(col));
  }
  std::vector<std::vector<Value>> new_rows;
  new_rows.reserve(oids->Count());
  for (size_t i = 0; i < oids->Count(); ++i) {
    const size_t row = static_cast<size_t>(oids->OidAt(i));
    std::vector<Value> new_row(t->NumColumns());
    for (size_t c = 0; c < t->NumColumns(); ++c) {
      const Bat& col = *columns[c];
      switch (col.type()) {
        case PhysType::kStr:
          new_row[c] = Value::Str(std::string(col.StringAt(row)));
          break;
        case PhysType::kDouble:
          new_row[c] = Value::Real(col.ValueAt<double>(row));
          break;
        case PhysType::kFloat:
          new_row[c] = Value::Real(col.ValueAt<float>(row));
          break;
        case PhysType::kInt64:
          new_row[c] = Value::Int(col.ValueAt<int64_t>(row));
          break;
        case PhysType::kOid:
          new_row[c] = Value::Int(static_cast<int64_t>(col.OidAt(row)));
          break;
        case PhysType::kInt32:
          new_row[c] = Value::Int(col.ValueAt<int32_t>(row));
          break;
        case PhysType::kInt16:
          new_row[c] = Value::Int(col.ValueAt<int16_t>(row));
          break;
        case PhysType::kBool:
        case PhysType::kInt8:
          new_row[c] = Value::Int(col.ValueAt<int8_t>(row));
          break;
      }
    }
    for (const auto& [idx, value] : sets) new_row[idx] = value;
    new_rows.push_back(std::move(new_row));
  }
  // Apply insert+delete as one atomic unit: any failure rolls the table
  // back to the pre-statement delta state.
  const Table::DeltaMark mark = t->Mark();
  for (const std::vector<Value>& new_row : new_rows) {
    Status st = t->Insert(new_row, w->stamp);
    if (!st.ok()) {
      t->Rollback(mark);
      return st;
    }
  }
  if (Status st = t->Delete(oids, w->stamp, &w->snap); !st.ok()) {
    t->Rollback(mark);
    return st;
  }
  txn->UpdateCells(stmt.table, t->schema(), *oids, new_rows);
  return Status::OK();
}

namespace {

/// Folds every table's deltas into its main BATs before a checkpoint.
/// The snapshot is saved merged and compacted (OIDs renumbered densely),
/// so the live tables must adopt that same OID space — otherwise the
/// positions in post-checkpoint Delete/Update log records would not
/// resolve against the snapshot at recovery. Requires the exclusive
/// lock; shared BATs are replaced, never mutated, so results already
/// handed out stay valid.
Status MergeForCheckpoint(Catalog* catalog) {
  for (const auto& name : catalog->TableNames()) {
    MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog->Get(name));
    MAMMOTH_RETURN_IF_ERROR(t->MergeDeltas());
  }
  return Status::OK();
}

}  // namespace

Result<mal::QueryResult> Engine::RunCheckpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "CHECKPOINT: no durable storage attached (open a database "
        "directory first)");
  }
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  // The merge compacts away the delta versions open snapshots still
  // read; demand quiescence instead of silently breaking them.
  if (tm_.ActiveCount() > 0) {
    return Status::Unavailable(
        "CHECKPOINT: " + std::to_string(tm_.ActiveCount()) +
        " transaction(s) open — retry when they finish");
  }
  MAMMOTH_RETURN_IF_ERROR(MergeForCheckpoint(catalog_.get()));
  MAMMOTH_ASSIGN_OR_RETURN(uint64_t lsn, wal_->Checkpoint(*catalog_));
  mal::QueryResult r;
  BatPtr col = Bat::New(PhysType::kInt64);
  col->Append<int64_t>(static_cast<int64_t>(lsn));
  r.names = {"checkpoint_lsn"};
  r.columns = {std::move(col)};
  return r;
}

Result<mal::QueryResult> Engine::CommitDurable(
    const wal::TxnBuilder& txn, std::unique_lock<std::shared_mutex>* lock) {
  if (wal_ == nullptr || txn.empty()) return mal::QueryResult{};
  MAMMOTH_ASSIGN_OR_RETURN(uint64_t lsn, wal_->LogTransaction(txn.ops()));
  // The log-size checkpoint trigger needs a quiescent delta state (the
  // merge is stamp-blind); with transactions open it simply waits for a
  // later commit. The committing transaction itself already ended.
  if (wal_->ShouldCheckpoint() && tm_.ActiveCount() == 0) {
    // Log-size trigger: keep the exclusive lock (the checkpoint needs a
    // quiescent catalog), make the log durable, fold it into a snapshot.
    MAMMOTH_RETURN_IF_ERROR(wal_->Sync(lsn));
    // The replication barrier runs *before* the checkpoint: the
    // checkpoint GCs segments below its LSN, and a semi-sync primary
    // must not discard bytes a replica has yet to ack (the source would
    // have to fall back to a full snapshot transfer for a lag measured
    // in milliseconds).
    if (commit_barrier_) MAMMOTH_RETURN_IF_ERROR(commit_barrier_(lsn));
    MAMMOTH_RETURN_IF_ERROR(MergeForCheckpoint(catalog_.get()));
    MAMMOTH_RETURN_IF_ERROR(wal_->Checkpoint(*catalog_).status());
    return mal::QueryResult{};
  }
  // Group commit: release the exclusive lock *before* waiting on the
  // fsync, so commits of concurrent sessions pile into one sync batch
  // (the append above already fixed this transaction's log position).
  lock->unlock();
  MAMMOTH_RETURN_IF_ERROR(wal_->Sync(lsn));
  if (commit_barrier_) MAMMOTH_RETURN_IF_ERROR(commit_barrier_(lsn));
  return mal::QueryResult{};
}

Status Engine::ApplyReplicatedTxn(const std::vector<wal::Record>& ops) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  catalog_version_.fetch_add(1, std::memory_order_relaxed);
  // Whole-txn atomicity for replica readers: the rows are applied with a
  // replica-local commit timestamp minted up front, and open snapshots
  // (ts < this one) never see any of them — a read-only transaction on a
  // replica observes shipped transactions all-or-nothing.
  const uint64_t ts = tm_.NextCommitTs();
  for (const wal::Record& op : ops) {
    MAMMOTH_RETURN_IF_ERROR(wal::ApplyRecord(catalog_.get(), op, ts));
  }
  std::vector<std::string> noted;
  for (const wal::Record& op : ops) {
    if (op.table.empty()) continue;
    if (std::find(noted.begin(), noted.end(), op.table) != noted.end()) {
      continue;
    }
    noted.push_back(op.table);
    Result<TablePtr> t = catalog_->Get(op.table);
    if (t.ok()) (*t)->NoteCommit(ts);
  }
  if (recycler_ != nullptr) recycler_->Clear();
  return Status::OK();
}

Status Engine::ResetCatalogForReplication(std::shared_ptr<Catalog> catalog) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("replication: null catalog");
  }
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  catalog_version_.fetch_add(1, std::memory_order_relaxed);
  catalog_ = std::move(catalog);
  if (recycler_ != nullptr) recycler_->Clear();
  return Status::OK();
}

Result<mal::QueryResult> Engine::Execute(const std::string& statement,
                                         const parallel::ExecContext& ctx) {
  return ExecuteSession(default_session_, statement, ctx);
}

Result<mal::QueryResult> Engine::ExecuteSession(
    const SessionPtr& session, const std::string& statement,
    const parallel::ExecContext& ctx) {
  if (session == nullptr) {
    return Status::InvalidArgument("engine: null session");
  }
  // One statement at a time per session: pipelined wire frames of one
  // connection may race here, and transaction state transitions must be
  // serial. Lock order: session mutex before the engine lock.
  std::lock_guard<std::mutex> session_lock(session->mu_);
  if (IsCheckpointCommand(statement)) return RunCheckpoint();
  // The prepared-statement surface is routed before the regular parser
  // (like CHECKPOINT): its statement body must stay raw text.
  const std::string head = FirstWord(statement);
  if (head == "PREPARE") return RunPrepareSql(statement);
  if (head == "EXECUTE") return RunExecuteSql(session.get(), statement, ctx);
  MAMMOTH_ASSIGN_OR_RETURN(Statement stmt, Parse(statement));
  return ExecuteParsed(session.get(), std::move(stmt), ctx);
}

void Engine::AbortSession(const SessionPtr& session) {
  if (session == nullptr) return;
  std::lock_guard<std::mutex> session_lock(session->mu_);
  if (session->in_txn_) RollbackLocked(session.get());
}

Result<mal::QueryResult> Engine::RunBegin(Session* session) {
  if (session->in_txn_) {
    return Status::InvalidArgument(
        "BEGIN: a transaction is already open on this session");
  }
  // Allowed on a replica too: a read-only transaction gives repeatable
  // reads across shipped-txn application (DML inside is still refused).
  session->snap_ = tm_.Begin();
  session->in_txn_ = true;
  session->poisoned_ = false;
  session->poison_ = Status::OK();
  session->ops_ = std::make_unique<wal::TxnBuilder>();
  session->write_set_.clear();
  return mal::QueryResult{};
}

Result<mal::QueryResult> Engine::RunCommit(Session* session) {
  if (!session->in_txn_) {
    return Status::InvalidArgument("COMMIT without BEGIN");
  }
  if (session->poisoned_) {
    // An aborted transaction cannot commit: roll it back and surface the
    // original failure (keeping its status code — a kConflict stays
    // typed so clients know to retry).
    Status poison = session->poison_;
    RollbackLocked(session);
    return poison;
  }
  if (session->write_set_.empty()) {
    // Read-only transaction: nothing to publish, nothing to log.
    tm_.End(session->snap_.txn_id, /*committed=*/true);
    session->in_txn_ = false;
    session->ops_.reset();
    return mal::QueryResult{};
  }
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  catalog_version_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t txn_id = session->snap_.txn_id;
  // Publication point: restamping pending rows with the fresh commit
  // timestamp happens under the exclusive lock, so no reader observes a
  // half-committed transaction; snapshots minted from here on see all of
  // it. Write claims are released inside CommitVersions.
  const uint64_t ts = tm_.NextCommitTs();
  for (auto& [t, mark] : session->write_set_) t->CommitVersions(txn_id, ts);
  tm_.End(txn_id, /*committed=*/true);
  wal::TxnBuilder ops = std::move(*session->ops_);
  session->in_txn_ = false;
  session->ops_.reset();
  session->write_set_.clear();
  // Durability: the whole transaction goes out as one Begin..Commit WAL
  // batch (group commit applies to it like to any auto-commit statement).
  return CommitDurable(ops, &lock);
}

Result<mal::QueryResult> Engine::RunRollback(Session* session) {
  if (!session->in_txn_) {
    return Status::InvalidArgument("ROLLBACK without BEGIN");
  }
  RollbackLocked(session);
  return mal::QueryResult{};
}

void Engine::RollbackLocked(Session* session) {
  const uint64_t txn_id = session->snap_.txn_id;
  if (!session->write_set_.empty()) {
    std::unique_lock<std::shared_mutex> lock(rw_mu_);
    catalog_version_.fetch_add(1, std::memory_order_relaxed);
    // Single-owner rule: this transaction's pending rows are the delta
    // tail of every claimed table, so restoring the first-claim mark is
    // a physical undo — the table ends byte-identical to before BEGIN.
    // Nothing is logged: the WAL never saw the buffered ops.
    for (auto& [t, mark] : session->write_set_) {
      t->Rollback(mark);
      t->ReleaseWrite(txn_id);
    }
  }
  tm_.End(txn_id, /*committed=*/false);
  session->in_txn_ = false;
  session->poisoned_ = false;
  session->poison_ = Status::OK();
  session->ops_.reset();
  session->write_set_.clear();
}

Result<mal::QueryResult> Engine::ExecuteParsed(
    Session* session, Statement stmt, const parallel::ExecContext& ctx) {
  // Transaction control first — it touches only session + manager state
  // (BEGIN in particular takes no engine lock: minting a snapshot must
  // not wait behind a writer, or readers would block on a stalled txn).
  if (std::get_if<BeginStmt>(&stmt) != nullptr) return RunBegin(session);
  if (std::get_if<CommitStmt>(&stmt) != nullptr) return RunCommit(session);
  if (std::get_if<RollbackStmt>(&stmt) != nullptr) {
    return RunRollback(session);
  }
  if (session->in_txn_ && session->poisoned_) {
    return Status::InvalidArgument(
        "current transaction is aborted, statements ignored until "
        "ROLLBACK (" + std::string(session->poison_.message()) + ")");
  }

  // Reads share the lock; everything that mutates catalog or table
  // state is exclusive (concurrency rule in engine.h). Inside an open
  // transaction the SELECT resolves against the transaction's snapshot
  // (plus its own pending writes); otherwise against latest-committed.
  if (auto* sel = std::get_if<SelectStmt>(&stmt)) {
    std::shared_lock<std::shared_mutex> lock(rw_mu_);
    const txn::Snapshot snap =
        session->in_txn_ ? session->snap_ : tm_.LatestSnapshot();
    return RunSelect(*sel, ctx, snap);
  }
  // Replica role: refuse every mutation up front — this covers plain and
  // prepared DDL/DML alike, since prepared DML re-enters here after
  // parameter binding.
  if (read_only_.load(std::memory_order_acquire)) {
    return Status::ReadOnly(
        "this node is a read replica: writes go to the primary");
  }
  // DDL stays auto-commit: an open transaction's WAL batch carries row
  // ops only, and ROLLBACK's physical truncation cannot undo a catalog
  // registration. The refusal aborts the transaction (uniform poisoning:
  // any failed statement inside BEGIN..COMMIT does).
  const bool is_ddl = std::holds_alternative<CreateStmt>(stmt) ||
                      std::holds_alternative<AlterStmt>(stmt);
  if (is_ddl && session->in_txn_) {
    Status st = Status::InvalidArgument(
        "DDL inside an explicit transaction is not supported: COMMIT or "
        "ROLLBACK first");
    session->poisoned_ = true;
    session->poison_ = st;
    return st;
  }

  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  // Any mutation invalidates cached prepared plans wholesale: stale
  // plans recompile lazily at their next EXECUTE. Bumped up front so
  // even a failed statement errs toward recompilation, never toward a
  // stale plan.
  catalog_version_.fetch_add(1, std::memory_order_relaxed);
  if (auto* cre = std::get_if<CreateStmt>(&stmt)) {
    wal::TxnBuilder txn;
    MAMMOTH_RETURN_IF_ERROR(RunCreate(*cre, &txn));
    return CommitDurable(txn, &lock);
  }
  if (auto* alt = std::get_if<AlterStmt>(&stmt)) {
    // Representation change: it rewrites column storage in place, which
    // open snapshots may still be reading — demand transaction
    // quiescence, and drop cached plans/results keyed on the old layout.
    if (tm_.ActiveCount() > 0) {
      return Status::Unavailable(
          "ALTER TABLE: " + std::to_string(tm_.ActiveCount()) +
          " transaction(s) open — retry when they finish");
    }
    wal::TxnBuilder txn;
    Status st = RunAlter(*alt, &txn);
    if (recycler_ != nullptr) recycler_->Clear();
    MAMMOTH_RETURN_IF_ERROR(st);
    return CommitDurable(txn, &lock);
  }

  // DML. Inside BEGIN..COMMIT the statement stamps its rows pending
  // (visible only to this transaction) and buffers its WAL ops on the
  // session; auto-commit mints a throwaway transaction identity and
  // publishes at the end of the statement. Either way the recycler is
  // NOT flushed: cached intermediates are keyed on snapshot-visible
  // state (Table::VisibleStateKey), so entries for other tables — and
  // pre-mutation snapshots of this one — stay correct and reusable.
  WriteCtx w;
  wal::TxnBuilder local_ops;
  wal::TxnBuilder* ops = nullptr;
  const bool explicit_txn = session->in_txn_;
  if (explicit_txn) {
    w.txn_id = session->snap_.txn_id;
    w.snap = session->snap_;
    w.session = session;
    ops = session->ops_.get();
  } else {
    w.txn_id = tm_.AllocTxnId();
    w.snap = tm_.LatestSnapshot();
    w.snap.txn_id = w.txn_id;  // the statement sees its own writes
    ops = &local_ops;
  }
  w.stamp = txn::PendingStamp(w.txn_id);

  Status st;
  if (auto* ins = std::get_if<InsertStmt>(&stmt)) {
    st = RunInsert(*ins, ops, &w);
  } else if (auto* upd = std::get_if<UpdateStmt>(&stmt)) {
    st = RunUpdate(*upd, ops, &w);
  } else {
    st = RunDelete(std::get<DeleteStmt>(stmt), ops, &w);
  }
  if (!st.ok()) {
    // The statement already undid its partial physical effect (Run*
    // roll back to a statement-local mark) and logged nothing.
    if (explicit_txn) {
      // Poison: earlier statements of the transaction stay pending (and
      // claimed) until ROLLBACK; later statements fail fast.
      session->poisoned_ = true;
      session->poison_ = st;
    } else {
      for (const TablePtr& t : w.touched) t->ReleaseWrite(w.txn_id);
    }
    return st;
  }
  if (explicit_txn) {
    // Buffered: visibility and durability both arrive at COMMIT.
    return mal::QueryResult{};
  }
  // Auto-commit: restamp this statement's rows committed and publish.
  const uint64_t ts = tm_.NextCommitTs();
  for (const TablePtr& t : w.touched) t->CommitVersions(w.txn_id, ts);
  return CommitDurable(local_ops, &lock);
}

Result<mal::QueryResult> Engine::ExecuteScript(const std::string& script,
                                               const parallel::ExecContext&
                                                   ctx) {
  mal::QueryResult last;
  size_t start = 0;
  while (start < script.size()) {
    size_t end = script.find(';', start);
    if (end == std::string::npos) end = script.size();
    std::string stmt = script.substr(start, end - start);
    start = end + 1;
    // Skip empty fragments (whitespace between statements).
    if (stmt.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    MAMMOTH_ASSIGN_OR_RETURN(mal::QueryResult r, Execute(stmt, ctx));
    if (!r.names.empty()) last = std::move(r);
  }
  return last;
}

Result<std::shared_ptr<PreparedStatement>> Engine::Prepare(
    const std::string& statement) {
  MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<PreparedStatement> entry,
                           prepared_.GetOrPrepare(statement));
  if (entry->nparams > 0) {
    // (Re)infer placeholder types against the current catalog — a shared
    // entry prepared before a DDL would otherwise hand out stale hints.
    std::shared_lock<std::shared_mutex> lock(rw_mu_);
    std::vector<uint8_t> types =
        InferParamTypes(entry->ast, catalog_.get(), entry->nparams);
    lock.unlock();
    std::lock_guard<std::mutex> plan_lock(entry->plan_mu);
    entry->param_types = std::move(types);
  }
  return entry;
}

Result<mal::QueryResult> Engine::ExecutePrepared(
    uint64_t stmt_id, const std::vector<Value>& params,
    const parallel::ExecContext& ctx) {
  return ExecutePreparedSession(default_session_, stmt_id, params, ctx);
}

Result<mal::QueryResult> Engine::ExecutePreparedSession(
    const SessionPtr& session, uint64_t stmt_id,
    const std::vector<Value>& params, const parallel::ExecContext& ctx) {
  if (session == nullptr) {
    return Status::InvalidArgument("engine: null session");
  }
  std::lock_guard<std::mutex> session_lock(session->mu_);
  return ExecutePreparedLocked(session.get(), stmt_id, params, ctx);
}

Result<mal::QueryResult> Engine::ExecutePreparedLocked(
    Session* session, uint64_t stmt_id, const std::vector<Value>& params,
    const parallel::ExecContext& ctx) {
  MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<PreparedStatement> entry,
                           prepared_.Lookup(stmt_id));
  if (params.size() != entry->nparams) {
    return Status::InvalidArgument(
        "prepared: statement expects " + std::to_string(entry->nparams) +
        " parameters, got " + std::to_string(params.size()));
  }
  if (auto* sel = std::get_if<SelectStmt>(&entry->ast)) {
    if (session->in_txn_ && session->poisoned_) {
      return Status::InvalidArgument(
          "current transaction is aborted, statements ignored until "
          "ROLLBACK (" + std::string(session->poison_.message()) + ")");
    }
    std::shared_lock<std::shared_mutex> lock(rw_mu_);
    const txn::Snapshot snap =
        session->in_txn_ ? session->snap_ : tm_.LatestSnapshot();
    const uint64_t version = catalog_version_.load(std::memory_order_relaxed);
    mal::Program prog;
    {
      // (Re)compile under the entry's plan lock when absent or stale.
      // DDL/DML bump catalog_version_ only under the exclusive lock, so
      // the staleness check cannot race while we hold the shared lock.
      std::lock_guard<std::mutex> plan_lock(entry->plan_mu);
      if (!entry->has_plan || entry->plan_version != version) {
        MAMMOTH_ASSIGN_OR_RETURN(mal::Program fresh, Compile(*sel));
        if (optimize_) mal::OptimizePipeline(&fresh);
        entry->plan = std::move(fresh);
        entry->has_plan = true;
        entry->plan_version = version;
        prepared_.CountMiss();
      } else {
        prepared_.CountHit();
      }
      prog = entry->plan;  // copy: substitution must not touch the cache
    }
    MAMMOTH_RETURN_IF_ERROR(SubstituteProgram(&prog, params));
    if (entry->nparams == 0) {
      return RunCompiledSelect(std::move(prog), *sel, ctx, snap);
    }
    // HAVING literals live in the AST, not the plan — bind a private copy.
    Statement bound = entry->ast;
    MAMMOTH_RETURN_IF_ERROR(SubstituteStatement(&bound, params));
    return RunCompiledSelect(std::move(prog), std::get<SelectStmt>(bound),
                             ctx, snap);
  }
  // Prepared DML: bind a private AST copy and take the normal exclusive
  // path (joining the session's open transaction, if any). Only the
  // parse is skipped — plans are cached for SELECTs only, since mutation
  // cost is dominated by the delta machinery.
  prepared_.CountHit();
  Statement bound = entry->ast;
  MAMMOTH_RETURN_IF_ERROR(SubstituteStatement(&bound, params));
  return ExecuteParsed(session, std::move(bound), ctx);
}

Result<mal::QueryResult> Engine::RunPrepareSql(const std::string& statement) {
  // Hand-scanned (not lexed) so the statement body keeps its raw text:
  //   PREPARE <name> AS <statement>
  size_t i = 0;
  auto next_word = [&]() -> std::string {
    while (i < statement.size() &&
           std::isspace(static_cast<unsigned char>(statement[i]))) {
      ++i;
    }
    std::string w;
    while (i < statement.size() &&
           (std::isalnum(static_cast<unsigned char>(statement[i])) ||
            statement[i] == '_')) {
      w.push_back(statement[i++]);
    }
    return w;
  };
  next_word();  // "PREPARE" (routing already matched it)
  const std::string name = next_word();
  if (name.empty()) {
    return Status::InvalidArgument("PREPARE: expected a statement name");
  }
  std::string as = next_word();
  for (char& c : as) c = static_cast<char>(std::toupper(c));
  if (as != "AS") {
    return Status::InvalidArgument("PREPARE: expected AS after the name");
  }
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  const std::string body = statement.substr(i);
  MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<PreparedStatement> entry,
                           Prepare(body));
  prepared_.BindName(name, entry->id);
  mal::QueryResult r;
  BatPtr id_col = Bat::New(PhysType::kInt64);
  id_col->Append<int64_t>(static_cast<int64_t>(entry->id));
  BatPtr np_col = Bat::New(PhysType::kInt64);
  np_col->Append<int64_t>(static_cast<int64_t>(entry->nparams));
  r.names = {"stmt_id", "nparams"};
  r.columns = {std::move(id_col), std::move(np_col)};
  return r;
}

Result<mal::QueryResult> Engine::RunExecuteSql(
    Session* session, const std::string& statement,
    const parallel::ExecContext& ctx) {
  // EXECUTE <name> [( lit [, lit]* )] [;]
  MAMMOTH_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(statement));
  if (toks.size() < 2 || toks[1].kind != TokKind::kIdent) {
    return Status::InvalidArgument("EXECUTE: expected a statement name");
  }
  const std::string name = toks[1].text;
  std::vector<Value> params;
  size_t i = 2;  // toks ends with kEnd, so toks[i] below stays in range
  if (toks[i].IsSymbol("(")) {
    ++i;
    if (!toks[i].IsSymbol(")")) {
      while (true) {
        const Token& t = toks[i];
        if (t.kind == TokKind::kInt) {
          params.push_back(Value::Int(t.int_val));
        } else if (t.kind == TokKind::kReal) {
          params.push_back(Value::Real(t.real_val));
        } else if (t.kind == TokKind::kString) {
          params.push_back(Value::Str(t.text));
        } else {
          return Status::InvalidArgument(
              "EXECUTE: parameters must be literals");
        }
        ++i;
        if (!toks[i].IsSymbol(",")) break;
        ++i;
      }
    }
    if (!toks[i].IsSymbol(")")) {
      return Status::InvalidArgument("EXECUTE: expected ')'");
    }
    ++i;
  }
  if (toks[i].IsSymbol(";")) ++i;
  if (toks[i].kind != TokKind::kEnd) {
    return Status::InvalidArgument("EXECUTE: trailing input after ')'");
  }
  MAMMOTH_ASSIGN_OR_RETURN(uint64_t id, prepared_.ResolveName(name));
  return ExecutePreparedLocked(session, id, params, ctx);
}

Engine::CompressionStats Engine::compression_stats() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  CompressionStats s;
  for (const std::string& name : catalog_->TableNames()) {
    Result<TablePtr> t = catalog_->Get(name);
    if (!t.ok()) continue;
    if ((*t)->compression_enabled()) ++s.compressed_tables;
    s.compressed_columns += (*t)->CompressedColumnCount();
    s.compressed_bytes += (*t)->CompressedBytesTotal();
    s.logical_bytes += (*t)->CompressedLogicalBytesTotal();
    s.cache_bytes += (*t)->CompressedCacheBytesTotal();
  }
  return s;
}

mal::RunStats Engine::last_run_stats() const {
  std::lock_guard<std::mutex> lock(intro_mu_);
  return last_stats_;
}

mal::PipelineReport Engine::last_opt_report() const {
  std::lock_guard<std::mutex> lock(intro_mu_);
  return last_opt_;
}

std::string Engine::last_plan_text() const {
  std::lock_guard<std::mutex> lock(intro_mu_);
  return last_plan_;
}

}  // namespace mammoth::sql
