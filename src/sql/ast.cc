#include "sql/ast.h"

namespace mammoth::sql {

std::string SelectItem::Label() const {
  const std::string name = column.ToString();
  switch (agg) {
    case AggFn::kNone:
      return star ? "*" : name;
    case AggFn::kSum:
      return "sum(" + name + ")";
    case AggFn::kCount:
      return column.empty() ? "count(*)" : "count(" + name + ")";
    case AggFn::kMin:
      return "min(" + name + ")";
    case AggFn::kMax:
      return "max(" + name + ")";
    case AggFn::kAvg:
      return "avg(" + name + ")";
  }
  return name;
}

}  // namespace mammoth::sql
