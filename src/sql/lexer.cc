#include "sql/lexer.h"

#include <cctype>

namespace mammoth::sql {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;  // line comment
      continue;
    }
    Token t;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      t.kind = TokKind::kIdent;
      t.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i + 1;
      bool real = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') real = true;
        ++j;
      }
      t.text = input.substr(i, j - i);
      if (real) {
        t.kind = TokKind::kReal;
        t.real_val = std::stod(t.text);
      } else {
        t.kind = TokKind::kInt;
        t.int_val = std::stoll(t.text);
      }
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      while (j < n && input[j] != '\'') s.push_back(input[j++]);
      if (j >= n) return Status::InvalidArgument("unterminated string");
      t.kind = TokKind::kString;
      t.text = s;
      i = j + 1;
    } else {
      t.kind = TokKind::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
          t.text = two == "<>" ? "!=" : two;
          out.push_back(t);
          i += 2;
          continue;
        }
      }
      switch (c) {
        case '(':
        case ')':
        case ',':
        case ';':
        case '*':
        case '=':
        case '<':
        case '>':
        case '.':
        case '?':  // prepared-statement parameter placeholder
          t.text = std::string(1, c);
          break;
        default:
          return Status::InvalidArgument(std::string("unexpected char '") +
                                         c + "'");
      }
      ++i;
    }
    out.push_back(std::move(t));
  }
  out.push_back(Token{});  // kEnd
  return out;
}

}  // namespace mammoth::sql
