#ifndef MAMMOTH_SQL_ENGINE_H_
#define MAMMOTH_SQL_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/catalog.h"
#include "mal/interpreter.h"
#include "mal/optimizer.h"
#include "mal/program.h"
#include "parallel/exec_context.h"
#include "recycle/recycler.h"
#include "sql/ast.h"
#include "sql/prepared.h"
#include "txn/txn.h"

namespace mammoth::wal {
struct Record;
class TxnBuilder;
class Wal;
}  // namespace mammoth::wal

namespace mammoth::sql {

class Engine;

/// Per-session transaction state (one per connection; the embedded
/// Execute() surface uses an engine-internal default session). Opaque to
/// callers: all mutation goes through Engine::ExecuteSession. A session
/// serializes its own statements (pipelined wire frames of one
/// connection may race) but is independent of every other session.
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  /// Whether an explicit transaction is open (racy snapshot: stable only
  /// from the session's own statement stream).
  bool in_transaction() const { return in_txn_; }

 private:
  friend class Engine;

  uint64_t id_ = 0;
  /// Serializes statements of this session; taken *before* the engine
  /// lock (lock order: session mutex -> engine rw_mu_ -> txn manager).
  std::mutex mu_;
  bool in_txn_ = false;
  /// A failed statement inside an explicit transaction poisons it: every
  /// later statement fails until ROLLBACK (COMMIT rolls back and returns
  /// the poison error).
  bool poisoned_ = false;
  Status poison_;
  txn::Snapshot snap_;
  /// Logical WAL ops buffered statement by statement, logged as one
  /// Begin..Commit batch at COMMIT (ROLLBACK just drops them).
  std::unique_ptr<wal::TxnBuilder> ops_;
  /// Tables this transaction write-claimed, each with the delta mark
  /// taken at first claim — ROLLBACK restores these marks (physical
  /// truncation; the single-owner rule keeps them valid).
  std::vector<std::pair<TablePtr, Table::DeltaMark>> write_set_;
};

using SessionPtr = std::shared_ptr<Session>;

/// The SQL front-end of Figure 1: parses mini-SQL, compiles SELECTs into
/// MAL programs over the columnar back-end, runs the optimizer pipeline,
/// and interprets the result. DDL/DML statements act on the catalog
/// directly (INSERT/DELETE drive the delta machinery of core/table.h).
///
/// ### Concurrency rule (server sessions)
///
/// Execute() is safe to call from many threads at once. Internally a
/// reader/writer lock arbitrates statement classes:
///
///   - SELECT takes the lock *shared*: any number of reads run in
///     parallel (their kernel parallelism is whatever ExecContext each
///     one carries; concurrent ParallelFor calls on one pool serialize).
///   - CREATE / INSERT / UPDATE / DELETE take the lock *exclusive*: a
///     write waits for in-flight reads and blocks new ones, so readers
///     never observe a half-applied delta or a reallocating StringHeap.
///
/// Returned results are immutable snapshots: string result columns are
/// re-interned into private heaps before the lock is released, so a
/// result outlives any later DML on the tables it came from.
///
/// Not covered by the lock (single-threaded use only): catalog() and
/// Compile() direct access, and the AttachRecycler()/
/// AttachSharedScans()/EnableOptimizer() setup calls (do them before
/// going concurrent — the attached recycler and scheduler themselves
/// are internally synchronized and safe under concurrent sessions).
/// The last_*() introspection accessors are internally synchronized
/// but report *some* recent SELECT under concurrency, not a specific
/// one.
class Engine {
 public:
  Engine();

  /// Executes one statement. DDL/DML return an empty result. `ctx`
  /// scopes the kernel parallelism of this statement (a server passes
  /// the admission-granted slice of its shared pool). Runs on the
  /// engine's default session: auto-commit statements are safe from any
  /// thread, but explicit BEGIN/COMMIT/ROLLBACK on this surface assume a
  /// single caller (server connections get their own sessions).
  Result<mal::QueryResult> Execute(
      const std::string& statement,
      const parallel::ExecContext& ctx = parallel::ExecContext::Default());

  /// --- Sessions & transactions (§14) ---------------------------------

  /// Creates an independent session (per-connection transaction state).
  SessionPtr CreateSession();

  /// Executes one statement on `session`. Outside BEGIN/COMMIT this is
  /// exactly Execute(); inside an open transaction, SELECTs resolve
  /// against the transaction's snapshot and DML stays pending (invisible
  /// to other sessions, undone by ROLLBACK) until COMMIT.
  Result<mal::QueryResult> ExecuteSession(
      const SessionPtr& session, const std::string& statement,
      const parallel::ExecContext& ctx = parallel::ExecContext::Default());

  /// EXECUTE of a prepared statement on `session` (the wire kExecute
  /// path): prepared SELECTs read through the session snapshot, prepared
  /// DML joins the session's open transaction.
  Result<mal::QueryResult> ExecutePreparedSession(
      const SessionPtr& session, uint64_t stmt_id,
      const std::vector<Value>& params,
      const parallel::ExecContext& ctx = parallel::ExecContext::Default());

  /// Rolls back the session's open transaction, if any (disconnect path:
  /// a connection dying mid-transaction must not leave pending rows or a
  /// write claim behind). Idempotent.
  void AbortSession(const SessionPtr& session);

  /// Transaction counters (SERVER STATUS txn_* rows).
  txn::TxnStats txn_stats() const { return tm_.stats(); }

  /// Executes a ';'-separated script, returning the last SELECT's result.
  Result<mal::QueryResult> ExecuteScript(
      const std::string& script,
      const parallel::ExecContext& ctx = parallel::ExecContext::Default());

  /// PREPARE: parses `statement` once (literal positions may be `?`
  /// placeholders, ordinals left to right) and caches it keyed on the
  /// normalized text — two sessions preparing the same text share one
  /// entry. The wire-level kPrepare frame and the `PREPARE name AS ...`
  /// SQL surface both land here. Safe under concurrent sessions.
  Result<std::shared_ptr<PreparedStatement>> Prepare(
      const std::string& statement);

  /// EXECUTE: runs a prepared statement with `params` bound to its
  /// placeholders. SELECTs reuse the cached compiled + optimized MAL
  /// plan — skipping SQL parsing and SQL→MAL compilation — unless a
  /// DDL/DML statement has bumped the catalog version since the plan was
  /// built, in which case it is recompiled in place (counted as a cache
  /// miss, mirroring the recycler's wholesale invalidation). DML
  /// statements bind a private AST copy and take the normal exclusive
  /// path.
  Result<mal::QueryResult> ExecutePrepared(
      uint64_t stmt_id, const std::vector<Value>& params,
      const parallel::ExecContext& ctx = parallel::ExecContext::Default());

  PreparedStats prepared_stats() const { return prepared_.stats(); }
  void set_prepared_capacity(size_t n) { prepared_.set_capacity(n); }

  /// Compiles a parsed SELECT to MAL without running it (also used by
  /// tests and the quickstart example to print plans).
  Result<mal::Program> Compile(const SelectStmt& stmt) const;

  Catalog* catalog() { return catalog_.get(); }

  /// Attaches a recycler consulted by every subsequent query (§6.1).
  /// DML (INSERT/UPDATE/DELETE) clears it wholesale.
  void AttachRecycler(recycle::Recycler* recycler) { recycler_ = recycler; }

  /// Attaches a shared-scan scheduler (§5): subsequent SELECTs route
  /// their base-table scans through it, sharing one physical pass with
  /// any concurrent scan of the same table. Results are bit-identical
  /// to the direct kernel path.
  void AttachSharedScans(scan::SharedScanScheduler* scheduler) {
    shared_scans_ = scheduler;
  }

  /// Attaches a write-ahead log (normally via wal::OpenDatabase): every
  /// subsequent DDL/DML statement is logged as one transaction and not
  /// acknowledged until durable. The append happens under the exclusive
  /// lock (log order = apply order); the fsync wait happens *after* the
  /// lock is released, so concurrent sessions' commits batch under a
  /// single fsync (group commit). Also enables the CHECKPOINT command
  /// and the log-size checkpoint trigger.
  void AttachWal(wal::Wal* wal) { wal_ = wal; }

  /// Toggles the MAL optimizer pipeline (default on).
  void EnableOptimizer(bool on) { optimize_ = on; }

  /// Read-only mode (replica role): every mutating statement — plain or
  /// prepared, DDL or DML — is refused with StatusCode::kReadOnly before
  /// it touches the catalog. SELECT, CHECKPOINT interception and the
  /// PREPARE surface stay available. Flipped off by promotion.
  void set_read_only(bool on) {
    read_only_.store(on, std::memory_order_release);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Post-durability commit barrier, called after `wal_->Sync(lsn)` with
  /// the transaction's end LSN and *before* the commit is acknowledged.
  /// The replication source hooks its semi-sync wait here. Called without
  /// engine locks held; set before going concurrent.
  using CommitBarrier = std::function<Status(uint64_t lsn)>;
  void SetCommitBarrier(CommitBarrier barrier) {
    commit_barrier_ = std::move(barrier);
  }

  /// Replica-side replay: applies one shipped transaction's ops (between
  /// its kBegin/kCommit markers, which the applier strips) atomically
  /// under the exclusive lock via wal::ApplyRecord — the same machinery
  /// as crash recovery. Bypasses the read-only gate (it *is* the one
  /// writer a replica has) and does not log: the primary's WAL is the
  /// durability story.
  Status ApplyReplicatedTxn(const std::vector<wal::Record>& ops);

  /// Replica-side snapshot bootstrap: atomically replaces the whole
  /// catalog (loaded from a shipped checkpoint) under the exclusive
  /// lock. In-flight SELECT results stay valid — they snapshot their
  /// string columns and hold BATs by shared_ptr.
  Status ResetCatalogForReplication(std::shared_ptr<Catalog> catalog);

  /// Introspection for the last executed SELECT (by value: the fields
  /// are mutex-guarded against concurrent SELECTs).
  mal::RunStats last_run_stats() const;
  mal::PipelineReport last_opt_report() const;
  std::string last_plan_text() const;

  /// Compression posture of the catalog, gathered under the shared lock
  /// (safe against concurrent DDL/DML): how many tables carry the
  /// compression policy, how many columns are stored compressed, and the
  /// codec vs logical bytes those columns occupy.
  struct CompressionStats {
    uint64_t compressed_tables = 0;
    uint64_t compressed_columns = 0;
    uint64_t compressed_bytes = 0;  ///< codec stream bytes held
    uint64_t logical_bytes = 0;     ///< uncompressed bytes they stand for
    uint64_t cache_bytes = 0;       ///< whole-column decode caches pinned
  };
  CompressionStats compression_stats() const;

  /// Counters of the attached recycler; all-zero when none is attached.
  recycle::Recycler::Stats recycler_stats() const {
    return recycler_ != nullptr ? recycler_->stats()
                                : recycle::Recycler::Stats{};
  }

 private:
  /// Write context of one mutating statement: the transaction identity
  /// its rows are stamped with, the snapshot its predicates read through,
  /// and where claimed tables are recorded (the session's write set for
  /// explicit transactions, `touched` for auto-commit).
  struct WriteCtx {
    uint64_t txn_id = 0;
    uint64_t stamp = 0;
    txn::Snapshot snap;
    Session* session = nullptr;        ///< non-null inside BEGIN..COMMIT
    std::vector<TablePtr> touched;     ///< auto-commit: tables claimed
  };

  /// Claims `t` for the statement's transaction; kConflict when another
  /// transaction holds it. Records the claim (with a rollback mark) on
  /// first contact.
  Status ClaimTable(WriteCtx* w, const TablePtr& t);

  /// Tail of Execute() after parsing: routes `stmt` under the proper lock
  /// class (SELECT shared, mutations exclusive). Also the entry point of
  /// prepared DML after parameter binding. `session` is never null.
  Result<mal::QueryResult> ExecuteParsed(Session* session, Statement stmt,
                                         const parallel::ExecContext& ctx);
  /// ExecutePreparedSession body; caller holds the session mutex (also
  /// the re-entry point of the EXECUTE SQL surface, which already does).
  Result<mal::QueryResult> ExecutePreparedLocked(
      Session* session, uint64_t stmt_id, const std::vector<Value>& params,
      const parallel::ExecContext& ctx);
  Result<mal::QueryResult> RunBegin(Session* session);
  Result<mal::QueryResult> RunCommit(Session* session);
  Result<mal::QueryResult> RunRollback(Session* session);
  /// Rolls the session's open transaction back (marks restored, claims
  /// released, manager notified). Caller holds the session mutex.
  void RollbackLocked(Session* session);
  Result<mal::QueryResult> RunSelect(const SelectStmt& stmt,
                                     const parallel::ExecContext& ctx,
                                     const txn::Snapshot& snap);
  /// Runs an already compiled (and optimized) SELECT plan; the
  /// post-processing — HAVING, ORDER BY, LIMIT, result snapshotting —
  /// still comes from `stmt`. Caller holds the shared lock.
  Result<mal::QueryResult> RunCompiledSelect(mal::Program prog,
                                             const SelectStmt& stmt,
                                             const parallel::ExecContext& ctx,
                                             const txn::Snapshot& snap);
  /// The PREPARE / EXECUTE SQL surface (intercepted before the parser):
  ///   PREPARE <name> AS <statement>   -- body kept as raw text
  ///   EXECUTE <name> [(lit, ...)]
  Result<mal::QueryResult> RunPrepareSql(const std::string& statement);
  Result<mal::QueryResult> RunExecuteSql(Session* session,
                                         const std::string& statement,
                                         const parallel::ExecContext& ctx);
  /// The mutating statements. Each applies its full effect or none of it
  /// (statement atomicity via Table::Mark/Rollback) and, on success,
  /// appends its logical ops to `txn` for the WAL.
  Status RunCreate(const CreateStmt& stmt, wal::TxnBuilder* txn);
  Status RunAlter(const AlterStmt& stmt, wal::TxnBuilder* txn);
  Status RunInsert(const InsertStmt& stmt, wal::TxnBuilder* txn, WriteCtx* w);
  Status RunDelete(const DeleteStmt& stmt, wal::TxnBuilder* txn, WriteCtx* w);
  Status RunUpdate(const UpdateStmt& stmt, wal::TxnBuilder* txn, WriteCtx* w);

  /// Commit tail of a successful mutating statement: logs `txn`, drops
  /// the exclusive lock, and waits for durability (group commit). When
  /// the log-size trigger fires, checkpoints first — under the lock.
  Result<mal::QueryResult> CommitDurable(const wal::TxnBuilder& txn,
                                         std::unique_lock<std::shared_mutex>*
                                             lock);

  /// The CHECKPOINT admin command (intercepted before the SQL parser).
  Result<mal::QueryResult> RunCheckpoint();

  std::shared_ptr<Catalog> catalog_;
  /// Transaction IDs, commit timestamps and snapshots (§14).
  txn::TransactionManager tm_;
  /// Session of the plain Execute() surface (embedded use, init scripts).
  SessionPtr default_session_;
  std::atomic<uint64_t> next_session_id_{1};
  PreparedCache prepared_;
  /// Bumped under the exclusive lock by every mutating statement; a
  /// prepared plan stamped with an older version recompiles lazily at
  /// its next EXECUTE (the shared lock makes the check race-free).
  std::atomic<uint64_t> catalog_version_{0};
  wal::Wal* wal_ = nullptr;
  recycle::Recycler* recycler_ = nullptr;
  scan::SharedScanScheduler* shared_scans_ = nullptr;
  bool optimize_ = true;
  std::atomic<bool> read_only_{false};
  CommitBarrier commit_barrier_;

  /// Readers (SELECT) shared, writers (DDL/DML) exclusive; see above.
  /// Mutable so const introspection (compression_stats) can share-lock.
  mutable std::shared_mutex rw_mu_;
  /// Guards the last_* introspection fields (written under rw_mu_ held
  /// shared, so they need their own lock).
  mutable std::mutex intro_mu_;
  mal::RunStats last_stats_;
  mal::PipelineReport last_opt_;
  std::string last_plan_;
};

}  // namespace mammoth::sql

#endif  // MAMMOTH_SQL_ENGINE_H_
