#ifndef MAMMOTH_SQL_ENGINE_H_
#define MAMMOTH_SQL_ENGINE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/catalog.h"
#include "mal/interpreter.h"
#include "mal/optimizer.h"
#include "mal/program.h"
#include "recycle/recycler.h"
#include "sql/ast.h"

namespace mammoth::sql {

/// The SQL front-end of Figure 1: parses mini-SQL, compiles SELECTs into
/// MAL programs over the columnar back-end, runs the optimizer pipeline,
/// and interprets the result. DDL/DML statements act on the catalog
/// directly (INSERT/DELETE drive the delta machinery of core/table.h).
class Engine {
 public:
  Engine() : catalog_(std::make_shared<Catalog>()) {}

  /// Executes one statement. DDL/DML return an empty result.
  Result<mal::QueryResult> Execute(const std::string& statement);

  /// Executes a ';'-separated script, returning the last SELECT's result.
  Result<mal::QueryResult> ExecuteScript(const std::string& script);

  /// Compiles a parsed SELECT to MAL without running it (also used by
  /// tests and the quickstart example to print plans).
  Result<mal::Program> Compile(const SelectStmt& stmt) const;

  Catalog* catalog() { return catalog_.get(); }

  /// Attaches a recycler consulted by every subsequent query (§6.1).
  void AttachRecycler(recycle::Recycler* recycler) { recycler_ = recycler; }

  /// Toggles the MAL optimizer pipeline (default on).
  void EnableOptimizer(bool on) { optimize_ = on; }

  /// Introspection for the last executed SELECT.
  const mal::RunStats& last_run_stats() const { return last_stats_; }
  const mal::PipelineReport& last_opt_report() const { return last_opt_; }
  const std::string& last_plan_text() const { return last_plan_; }

 private:
  Result<mal::QueryResult> RunSelect(const SelectStmt& stmt);
  Status RunCreate(const CreateStmt& stmt);
  Status RunInsert(const InsertStmt& stmt);
  Status RunDelete(const DeleteStmt& stmt);
  Status RunUpdate(const UpdateStmt& stmt);

  std::shared_ptr<Catalog> catalog_;
  recycle::Recycler* recycler_ = nullptr;
  bool optimize_ = true;
  mal::RunStats last_stats_;
  mal::PipelineReport last_opt_;
  std::string last_plan_;
};

}  // namespace mammoth::sql

#endif  // MAMMOTH_SQL_ENGINE_H_
