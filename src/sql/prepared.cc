#include "sql/prepared.h"

#include <cctype>

#include "sql/parser.h"

namespace mammoth::sql {
namespace {

/// Cache-key normalization: collapse whitespace runs to one space,
/// case-fold everything outside single-quoted strings, and strip a
/// trailing ';'. "select  A from T;" and "SELECT a FROM t" share a plan.
std::string Normalize(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  bool pending_space = false;
  for (const char c : text) {
    if (in_string) {
      out.push_back(c);
      if (c == '\'') in_string = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out.push_back(c);
      continue;
    }
    out.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

Status SubstituteValue(Value* v, const std::vector<Value>& params) {
  if (!v->is_param()) return Status::OK();
  const uint32_t idx = v->param_index();
  if (idx >= params.size()) {
    return Status::InvalidArgument(
        "prepared: parameter ?" + std::to_string(idx) +
        " out of range (got " + std::to_string(params.size()) + " values)");
  }
  if (params[idx].is_nil()) {
    return Status::InvalidArgument("prepared: parameter ?" +
                                   std::to_string(idx) + " is nil");
  }
  *v = params[idx];
  return Status::OK();
}

Status SubstitutePredicates(std::vector<Predicate>* preds,
                            const std::vector<Value>& params) {
  for (Predicate& p : *preds) {
    if (p.is_join) continue;
    MAMMOTH_RETURN_IF_ERROR(SubstituteValue(&p.literal, params));
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<PreparedStatement>> PreparedCache::GetOrPrepare(
    const std::string& text) {
  const std::string key = Normalize(text);
  if (key.empty()) {
    return Status::InvalidArgument("prepared: empty statement");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      ++hits_;
      last_used_[it->second] = ++lru_tick_;
      return by_id_[it->second];
    }
  }
  // Parse outside the cache lock; PREPARE of a brand-new statement pays
  // the parser exactly once.
  uint32_t nparams = 0;
  MAMMOTH_ASSIGN_OR_RETURN(Statement stmt, Parse(text, &nparams));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {  // lost the race: another session inserted it
    ++hits_;
    last_used_[it->second] = ++lru_tick_;
    return by_id_[it->second];
  }
  ++misses_;
  auto entry = std::make_shared<PreparedStatement>();
  entry->id = next_id_++;
  entry->key = key;
  entry->nparams = nparams;
  entry->ast = std::move(stmt);
  by_id_[entry->id] = entry;
  by_key_[key] = entry->id;
  last_used_[entry->id] = ++lru_tick_;
  EvictIfNeededLocked();
  return entry;
}

Result<std::shared_ptr<PreparedStatement>> PreparedCache::Lookup(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("prepared: unknown statement id " +
                            std::to_string(id));
  }
  last_used_[id] = ++lru_tick_;
  return it->second;
}

void PreparedCache::BindName(const std::string& name, uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  names_[Normalize(name)] = id;
}

Result<uint64_t> PreparedCache::ResolveName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = names_.find(Normalize(name));
  if (it == names_.end()) {
    return Status::NotFound("prepared: unknown statement '" + name + "'");
  }
  return it->second;
}

void PreparedCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictIfNeededLocked();
}

PreparedStats PreparedCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PreparedStats s;
  s.entries = by_id_.size();
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

void PreparedCache::EvictIfNeededLocked() {
  while (by_id_.size() > capacity_) {
    uint64_t victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (const auto& [id, tick] : last_used_) {
      if (tick < oldest) {
        oldest = tick;
        victim = id;
      }
    }
    auto it = by_id_.find(victim);
    if (it == by_id_.end()) break;  // defensive; maps are kept in sync
    by_key_.erase(it->second->key);
    by_id_.erase(it);
    last_used_.erase(victim);
    ++evictions_;
    // Stale name bindings resolve to Lookup() -> kNotFound, mirroring
    // DEALLOCATE-less servers; no need to scrub names_ here.
  }
}

Status SubstituteProgram(mal::Program* prog,
                         const std::vector<Value>& params) {
  for (mal::Instr& ins : prog->mutable_instrs()) {
    for (Value& v : ins.consts) {
      MAMMOTH_RETURN_IF_ERROR(SubstituteValue(&v, params));
    }
  }
  return Status::OK();
}

Status SubstituteStatement(Statement* stmt,
                           const std::vector<Value>& params) {
  return std::visit(
      [&params](auto& s) -> Status {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          MAMMOTH_RETURN_IF_ERROR(SubstitutePredicates(&s.where, params));
          for (HavingPred& h : s.having) {
            MAMMOTH_RETURN_IF_ERROR(SubstituteValue(&h.literal, params));
          }
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          for (std::vector<Value>& row : s.rows) {
            for (Value& v : row) {
              MAMMOTH_RETURN_IF_ERROR(SubstituteValue(&v, params));
            }
          }
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          MAMMOTH_RETURN_IF_ERROR(SubstitutePredicates(&s.where, params));
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          for (auto& [col, v] : s.sets) {
            MAMMOTH_RETURN_IF_ERROR(SubstituteValue(&v, params));
          }
          MAMMOTH_RETURN_IF_ERROR(SubstitutePredicates(&s.where, params));
        }
        // CREATE/ALTER carry no literal positions.
        return Status::OK();
      },
      *stmt);
}

}  // namespace mammoth::sql
