#ifndef MAMMOTH_CORE_CATALOG_H_
#define MAMMOTH_CORE_CATALOG_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/table.h"

namespace mammoth {

/// Schema catalog: names tables for the front-ends (§3.2). Also stores
/// declared join indices (pre-computed join results the heuristic optimizer
/// may exploit, §3.1: "catalogue knowledge on join-indices").
class Catalog {
 public:
  Catalog() = default;

  Status Register(TablePtr table);
  Status Drop(std::string_view name);
  Result<TablePtr> Get(std::string_view name) const;
  bool Contains(std::string_view name) const;

  std::vector<std::string> TableNames() const;

  /// Declares a join index between table1.col1 and table2.col2.
  Status RegisterJoinIndex(const std::string& table1, const std::string& col1,
                           const std::string& table2, const std::string& col2);

  /// True when a join index was declared for the given column pair (either
  /// orientation).
  bool HasJoinIndex(const std::string& table1, const std::string& col1,
                    const std::string& table2,
                    const std::string& col2) const;

 private:
  std::map<std::string, TablePtr, std::less<>> tables_;
  std::vector<std::array<std::string, 4>> join_indices_;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_CATALOG_H_
