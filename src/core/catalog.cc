#include "core/catalog.h"

#include <array>

namespace mammoth {

Status Catalog::Register(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (tables_.count(table->name()) > 0) {
    return Status::AlreadyExists("table " + table->name() + " exists");
  }
  tables_.emplace(table->name(), std::move(table));
  return Status::OK();
}

Status Catalog::Drop(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + std::string(name));
  }
  tables_.erase(it);
  return Status::OK();
}

Result<TablePtr> Catalog::Get(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + std::string(name));
  }
  return it->second;
}

bool Catalog::Contains(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Catalog::RegisterJoinIndex(const std::string& table1,
                                  const std::string& col1,
                                  const std::string& table2,
                                  const std::string& col2) {
  if (!Contains(table1) || !Contains(table2)) {
    return Status::NotFound("join index references unknown table");
  }
  join_indices_.push_back({table1, col1, table2, col2});
  return Status::OK();
}

bool Catalog::HasJoinIndex(const std::string& table1, const std::string& col1,
                           const std::string& table2,
                           const std::string& col2) const {
  for (const auto& ji : join_indices_) {
    if ((ji[0] == table1 && ji[1] == col1 && ji[2] == table2 &&
         ji[3] == col2) ||
        (ji[0] == table2 && ji[1] == col2 && ji[2] == table1 &&
         ji[3] == col1)) {
      return true;
    }
  }
  return false;
}

}  // namespace mammoth
