#include "core/types.h"

namespace mammoth {

const char* TypeName(PhysType t) {
  switch (t) {
    case PhysType::kBool:
      return "bit";
    case PhysType::kInt8:
      return "bte";
    case PhysType::kInt16:
      return "sht";
    case PhysType::kInt32:
      return "int";
    case PhysType::kInt64:
      return "lng";
    case PhysType::kOid:
      return "oid";
    case PhysType::kFloat:
      return "flt";
    case PhysType::kDouble:
      return "dbl";
    case PhysType::kStr:
      return "str";
  }
  return "unknown";
}

}  // namespace mammoth
