#include "core/join.h"

#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "core/dispatch.h"

namespace mammoth::algebra {

namespace {

/// Bucket-chained hash join on numeric tails. Build on r, probe with l.
template <typename T>
JoinResult HashJoinTyped(const Bat& l, const Bat& r) {
  const T* rv = r.TailData<T>();
  const T* lv = l.TailData<T>();
  const size_t rn = r.Count();
  const size_t ln = l.Count();

  const size_t nbuckets = NextPow2(rn < 8 ? 8 : rn);
  const uint64_t mask = nbuckets - 1;
  // next[i] chains build tuples; buckets holds 1-based heads (0 = empty).
  std::vector<uint32_t> buckets(nbuckets, 0);
  std::vector<uint32_t> next(rn, 0);
  for (size_t i = 0; i < rn; ++i) {
    uint64_t h;
    if constexpr (std::is_floating_point_v<T>) {
      h = HashDouble(static_cast<double>(rv[i])) & mask;
    } else {
      h = HashInt(static_cast<uint64_t>(rv[i])) & mask;
    }
    next[i] = buckets[h];
    buckets[h] = static_cast<uint32_t>(i + 1);
  }

  JoinResult out;
  out.left = Bat::New(PhysType::kOid);
  out.right = Bat::New(PhysType::kOid);
  out.left->Reserve(ln);
  out.right->Reserve(ln);
  const Oid lbase = l.hseqbase();
  const Oid rbase = r.hseqbase();
  for (size_t i = 0; i < ln; ++i) {
    const T key = lv[i];
    uint64_t h;
    if constexpr (std::is_floating_point_v<T>) {
      h = HashDouble(static_cast<double>(key)) & mask;
    } else {
      h = HashInt(static_cast<uint64_t>(key)) & mask;
    }
    for (uint32_t j = buckets[h]; j != 0; j = next[j - 1]) {
      if (rv[j - 1] == key) {
        out.left->Append<Oid>(lbase + i);
        out.right->Append<Oid>(rbase + (j - 1));
      }
    }
  }
  return out;
}

JoinResult HashJoinString(const Bat& l, const Bat& r) {
  const uint64_t* roffs = r.TailData<uint64_t>();
  const uint64_t* loffs = l.TailData<uint64_t>();
  const size_t rn = r.Count();
  const size_t ln = l.Count();
  const StringHeap& rheap = *r.heap();
  const StringHeap& lheap = *l.heap();
  const bool same_heap = r.heap() == l.heap();

  const size_t nbuckets = NextPow2(rn < 8 ? 8 : rn);
  const uint64_t mask = nbuckets - 1;
  std::vector<uint32_t> buckets(nbuckets, 0);
  std::vector<uint32_t> next(rn, 0);
  for (size_t i = 0; i < rn; ++i) {
    const uint64_t h = HashString(rheap.Get(roffs[i])) & mask;
    next[i] = buckets[h];
    buckets[h] = static_cast<uint32_t>(i + 1);
  }

  JoinResult out;
  out.left = Bat::New(PhysType::kOid);
  out.right = Bat::New(PhysType::kOid);
  const Oid lbase = l.hseqbase();
  const Oid rbase = r.hseqbase();
  for (size_t i = 0; i < ln; ++i) {
    const std::string_view key = lheap.Get(loffs[i]);
    const uint64_t h = HashString(key) & mask;
    for (uint32_t j = buckets[h]; j != 0; j = next[j - 1]) {
      const bool eq = same_heap ? roffs[j - 1] == loffs[i]
                                : rheap.Get(roffs[j - 1]) == key;
      if (eq) {
        out.left->Append<Oid>(lbase + i);
        out.right->Append<Oid>(rbase + (j - 1));
      }
    }
  }
  return out;
}

template <typename T>
JoinResult MergeJoinTyped(const Bat& l, const Bat& r) {
  const T* lv = l.TailData<T>();
  const T* rv = r.TailData<T>();
  const size_t ln = l.Count();
  const size_t rn = r.Count();
  const Oid lbase = l.hseqbase();
  const Oid rbase = r.hseqbase();

  JoinResult out;
  out.left = Bat::New(PhysType::kOid);
  out.right = Bat::New(PhysType::kOid);
  size_t i = 0, j = 0;
  while (i < ln && j < rn) {
    if (lv[i] < rv[j]) {
      ++i;
    } else if (rv[j] < lv[i]) {
      ++j;
    } else {
      // Emit the cross product of the two equal runs.
      size_t jend = j;
      while (jend < rn && rv[jend] == lv[i]) ++jend;
      for (; i < ln && lv[i] == rv[j]; ++i) {
        for (size_t k = j; k < jend; ++k) {
          out.left->Append<Oid>(lbase + i);
          out.right->Append<Oid>(rbase + k);
        }
      }
      j = jend;
    }
  }
  // Left OIDs come out non-decreasing.
  out.left->mutable_props().sorted = true;
  return out;
}

Status ValidateJoinInputs(const BatPtr& l, const BatPtr& r) {
  if (l == nullptr || r == nullptr) {
    return Status::InvalidArgument("join: null input");
  }
  const bool lstr = l->type() == PhysType::kStr;
  const bool rstr = r->type() == PhysType::kStr;
  if (lstr != rstr) return Status::TypeMismatch("join: str vs non-str");
  if (!lstr && l->type() != r->type()) {
    // Permissive about width (int vs lng) would need casts; require equal.
    return Status::TypeMismatch("join: tail types differ");
  }
  return Status::OK();
}

BatPtr Materialized(const BatPtr& b) {
  if (!b->IsDenseTail()) return b;
  BatPtr m = b->Clone();
  m->MaterializeDense();
  return m;
}

}  // namespace

Result<JoinResult> HashJoin(const BatPtr& l, const BatPtr& r) {
  MAMMOTH_RETURN_IF_ERROR(ValidateJoinInputs(l, r));
  if (l->type() == PhysType::kStr) return HashJoinString(*l, *r);
  const BatPtr lm = Materialized(l);
  const BatPtr rm = Materialized(r);
  return DispatchNumeric(lm->type(), [&](auto tag) -> JoinResult {
    using T = typename decltype(tag)::type;
    return HashJoinTyped<T>(*lm, *rm);
  });
}

Result<JoinResult> MergeJoin(const BatPtr& l, const BatPtr& r) {
  MAMMOTH_RETURN_IF_ERROR(ValidateJoinInputs(l, r));
  if (l->type() == PhysType::kStr) {
    return Status::Unimplemented("merge join on strings");
  }
  if (!l->props().sorted || !r->props().sorted) {
    return Status::InvalidArgument("merge join: inputs must be sorted");
  }
  const BatPtr lm = Materialized(l);
  const BatPtr rm = Materialized(r);
  return DispatchNumeric(lm->type(), [&](auto tag) -> JoinResult {
    using T = typename decltype(tag)::type;
    return MergeJoinTyped<T>(*lm, *rm);
  });
}

Result<JoinResult> Join(const BatPtr& l, const BatPtr& r) {
  MAMMOTH_RETURN_IF_ERROR(ValidateJoinInputs(l, r));
  if (l->type() != PhysType::kStr &&
      ((l->props().sorted && r->props().sorted) ||
       (l->IsDenseTail() && r->IsDenseTail()))) {
    return MergeJoin(l, r);
  }
  return HashJoin(l, r);
}

}  // namespace mammoth::algebra
