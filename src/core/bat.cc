#include "core/bat.h"

#include <cstdio>

namespace mammoth {

Bat::Bat(PhysType type) : type_(type), tail_(type) {
  if (type == PhysType::kStr) heap_ = std::make_shared<StringHeap>();
}

BatPtr Bat::New(PhysType type) { return std::make_shared<Bat>(type); }

BatPtr Bat::NewString(std::shared_ptr<StringHeap> heap) {
  BatPtr b = std::make_shared<Bat>(PhysType::kStr);
  if (heap != nullptr) b->heap_ = std::move(heap);
  return b;
}

BatPtr Bat::NewDense(Oid tseqbase, size_t count, Oid hseqbase) {
  BatPtr b = std::make_shared<Bat>(PhysType::kOid);
  b->dense_tail_ = true;
  b->tseqbase_ = tseqbase;
  b->dense_count_ = count;
  b->hseqbase_ = hseqbase;
  b->props_.sorted = true;
  b->props_.key = true;
  b->props_.revsorted = count <= 1;
  return b;
}

void Bat::MaterializeDense() {
  if (!dense_tail_) return;
  tail_.Resize(dense_count_);
  Oid* out = tail_.Data<Oid>();
  for (size_t i = 0; i < dense_count_; ++i) out[i] = tseqbase_ + i;
  dense_tail_ = false;
  dense_count_ = 0;
  props_.sorted = true;
  props_.key = true;
}

void Bat::AppendString(std::string_view s) {
  MAMMOTH_DCHECK(type_ == PhysType::kStr, "AppendString on non-str BAT");
  tail_.Append<uint64_t>(heap_->Put(s));
}

std::string_view Bat::StringAt(size_t i) const {
  MAMMOTH_DCHECK(type_ == PhysType::kStr, "StringAt on non-str BAT");
  return heap_->Get(tail_.Data<uint64_t>()[i]);
}

namespace {

template <typename T>
void DeriveNumericProps(const T* v, size_t n, BatProperties* props) {
  bool sorted = true, revsorted = true, key = true;
  for (size_t i = 1; i < n; ++i) {
    if (v[i - 1] > v[i]) sorted = false;
    if (v[i - 1] < v[i]) revsorted = false;
    if (v[i - 1] == v[i]) key = false;
    if (!sorted && !revsorted) break;  // key no longer derivable cheaply
  }
  props->sorted = sorted;
  props->revsorted = revsorted;
  // key is only certain when we scanned everything in order; a strictly
  // monotone sequence is certainly key.
  props->key = (sorted || revsorted) && key && n > 0;
  if (n <= 1) {
    props->sorted = props->revsorted = true;
    props->key = true;
  }
}

}  // namespace

void Bat::DeriveProps() {
  if (dense_tail_) {
    props_.sorted = true;
    props_.key = true;
    props_.revsorted = Count() <= 1;
    return;
  }
  const size_t n = tail_.size();
  switch (type_) {
    case PhysType::kBool:
    case PhysType::kInt8:
      DeriveNumericProps(tail_.Data<int8_t>(), n, &props_);
      break;
    case PhysType::kInt16:
      DeriveNumericProps(tail_.Data<int16_t>(), n, &props_);
      break;
    case PhysType::kInt32:
      DeriveNumericProps(tail_.Data<int32_t>(), n, &props_);
      break;
    case PhysType::kInt64:
      DeriveNumericProps(tail_.Data<int64_t>(), n, &props_);
      break;
    case PhysType::kOid:
    case PhysType::kStr:  // offsets: sortedness of offsets is meaningless,
                          // but key-ness of offsets == key-ness of strings
                          // thanks to interning; approximate with oid scan.
      DeriveNumericProps(tail_.Data<uint64_t>(), n, &props_);
      if (type_ == PhysType::kStr) {
        props_.sorted = props_.revsorted = false;
      }
      break;
    case PhysType::kFloat:
      DeriveNumericProps(tail_.Data<float>(), n, &props_);
      break;
    case PhysType::kDouble:
      DeriveNumericProps(tail_.Data<double>(), n, &props_);
      break;
  }
}

BatPtr Bat::Clone() const {
  BatPtr out = std::make_shared<Bat>(type_);
  out->hseqbase_ = hseqbase_;
  out->props_ = props_;
  if (dense_tail_) {
    out->dense_tail_ = true;
    out->tseqbase_ = tseqbase_;
    out->dense_count_ = dense_count_;
  } else {
    out->tail_ = tail_.Clone();
  }
  out->heap_ = heap_;  // heaps are shared by design
  return out;
}

std::string Bat::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "bat[:oid,:%s]{count=%zu%s%s%s%s}",
                TypeName(type_), Count(), dense_tail_ ? ",dense" : "",
                props_.sorted ? ",sorted" : "",
                props_.revsorted ? ",revsorted" : "", props_.key ? ",key" : "");
  return buf;
}

BatPtr MakeStringBat(std::initializer_list<std::string_view> values) {
  BatPtr b = Bat::NewString(nullptr);
  for (std::string_view s : values) b->AppendString(s);
  return b;
}

}  // namespace mammoth
