#ifndef MAMMOTH_CORE_BAT_H_
#define MAMMOTH_CORE_BAT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "core/column.h"
#include "core/string_heap.h"
#include "core/types.h"

namespace mammoth {

class Bat;
using BatPtr = std::shared_ptr<Bat>;

/// Tail properties maintained opportunistically by the kernels (§3.1: "They
/// maintain properties over the object accessed to gear the selection of
/// subsequent algorithms"). A property set to true is a guarantee; false
/// means "unknown", not "violated".
struct BatProperties {
  bool sorted = false;     ///< tail is non-decreasing
  bool revsorted = false;  ///< tail is non-increasing
  bool key = false;        ///< tail values are pairwise distinct
};

/// Binary Association Table: the storage unit of the engine (§3).
///
/// The head is always a *virtual* dense OID sequence starting at
/// `hseqbase()` — it occupies no memory, and positional lookup is a plain
/// array read (the O(1) lookup the paper contrasts with B-tree+slotted-page
/// designs). The tail is a typed memory array; string tails store offsets
/// into a shared StringHeap.
///
/// OID-typed tails can additionally be *dense* (a virtual arithmetic
/// sequence `tseqbase + i` with no backing array), which is how contiguous
/// select results and candidate lists avoid materialization.
class Bat {
 public:
  /// Creates an empty BAT with the given tail type.
  static BatPtr New(PhysType type);

  /// Creates an empty string BAT sharing `heap` (pass nullptr for a fresh
  /// heap).
  static BatPtr NewString(std::shared_ptr<StringHeap> heap);

  /// Creates a dense OID BAT: head [hseqbase..) and virtual tail
  /// [tseqbase, tseqbase+count). Used for candidate lists over full ranges.
  static BatPtr NewDense(Oid tseqbase, size_t count, Oid hseqbase = 0);

  explicit Bat(PhysType type);

  Bat(const Bat&) = delete;
  Bat& operator=(const Bat&) = delete;

  PhysType type() const { return type_; }
  size_t Count() const { return dense_tail_ ? dense_count_ : tail_.size(); }
  bool empty() const { return Count() == 0; }

  Oid hseqbase() const { return hseqbase_; }
  void set_hseqbase(Oid h) { hseqbase_ = h; }

  /// --- Dense (virtual) OID tails -------------------------------------
  bool IsDenseTail() const { return dense_tail_; }
  Oid tseqbase() const { return tseqbase_; }

  /// Converts a dense tail into an explicit array (no-op otherwise).
  void MaterializeDense();

  /// --- Typed access ----------------------------------------------------
  /// Direct pointer into the tail array. Invalid for dense tails (call
  /// MaterializeDense() first); checked in debug builds.
  template <typename T>
  const T* TailData() const {
    MAMMOTH_DCHECK(!dense_tail_, "TailData on dense tail");
    return tail_.Data<T>();
  }
  template <typename T>
  T* MutableTailData() {
    MAMMOTH_DCHECK(!dense_tail_, "TailData on dense tail");
    props_ = BatProperties{};  // writer may invalidate any guarantee
    return tail_.Data<T>();
  }

  /// OID at position i; handles dense and materialized tails.
  Oid OidAt(size_t i) const {
    MAMMOTH_DCHECK(type_ == PhysType::kOid, "OidAt on non-oid BAT");
    return dense_tail_ ? tseqbase_ + i : tail_.Data<Oid>()[i];
  }

  /// Value at position i (numeric tails only).
  template <typename T>
  T ValueAt(size_t i) const {
    return tail_.Data<T>()[i];
  }

  /// --- Building --------------------------------------------------------
  template <typename T>
  void Append(T v) {
    MAMMOTH_DCHECK(!dense_tail_, "Append on dense tail");
    MAMMOTH_DCHECK(TypeTraits<T>::kType == type_ ||
                       (type_ == PhysType::kStr && false),
                   "Append type mismatch");
    tail_.Append(v);
  }

  /// Appends `n` raw values of the tail's width.
  void AppendRaw(const void* src, size_t n) {
    MAMMOTH_DCHECK(!dense_tail_, "AppendRaw on dense tail");
    tail_.AppendRaw(src, n);
  }

  void Reserve(size_t n) { tail_.Reserve(n); }
  void Resize(size_t n) {
    MAMMOTH_DCHECK(!dense_tail_, "Resize on dense tail");
    tail_.Resize(n);
  }

  /// --- Strings ----------------------------------------------------------
  const std::shared_ptr<StringHeap>& heap() const { return heap_; }

  /// Interns `s` in the heap and appends its offset.
  void AppendString(std::string_view s);

  /// String value at position i (string tails only).
  std::string_view StringAt(size_t i) const;

  /// --- Properties --------------------------------------------------------
  const BatProperties& props() const { return props_; }
  BatProperties& mutable_props() { return props_; }

  /// Scans the tail and (re)derives sorted/revsorted/key properties.
  /// O(n) — used by tests and by optimizers that deem it worthwhile.
  void DeriveProps();

  /// Deep copy (string BATs share the heap).
  BatPtr Clone() const;

  /// Debug rendering: "bat[:oid,:int]{count=42,sorted}".
  std::string ToString() const;

  /// Bytes of tail payload (dense tails report 0).
  size_t PayloadBytes() const {
    return dense_tail_ ? 0 : tail_.size() * tail_.width();
  }

  /// Internal column (for kernels that build results in place).
  Column& tail() { return tail_; }
  const Column& tail() const { return tail_; }

  /// Attaches an object whose lifetime must cover this BAT's (e.g. the
  /// MappedFile backing a zero-copy tail).
  void set_keepalive(std::shared_ptr<void> k) { keepalive_ = std::move(k); }

 private:
  PhysType type_;
  Column tail_;
  std::shared_ptr<StringHeap> heap_;  // only for kStr
  Oid hseqbase_ = 0;

  bool dense_tail_ = false;
  Oid tseqbase_ = 0;
  size_t dense_count_ = 0;

  BatProperties props_;
  std::shared_ptr<void> keepalive_;
};

/// Convenience: builds a materialized BAT from a value list (testing aid).
template <typename T>
BatPtr MakeBat(std::initializer_list<T> values) {
  BatPtr b = Bat::New(TypeTraits<T>::kType);
  b->Reserve(values.size());
  for (T v : values) b->Append(v);
  return b;
}

/// Convenience: builds a string BAT from a list of literals.
BatPtr MakeStringBat(std::initializer_list<std::string_view> values);

}  // namespace mammoth

#endif  // MAMMOTH_CORE_BAT_H_
