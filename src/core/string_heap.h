#ifndef MAMMOTH_CORE_STRING_HEAP_H_
#define MAMMOTH_CORE_STRING_HEAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mammoth {

/// Variable-width value heap backing string BATs: all string bytes are
/// concatenated (null-terminated) in one buffer, and the BAT tail stores
/// fixed-width offsets into it (§3). Identical strings are deduplicated so
/// the heap doubles as a dictionary.
class StringHeap {
 public:
  StringHeap() = default;

  // Heaps are shared between BATs (e.g. a select result reuses its input's
  // heap); copying would break offset identity.
  StringHeap(const StringHeap&) = delete;
  StringHeap& operator=(const StringHeap&) = delete;

  /// Interns `s`, returning its offset. Repeated strings return the same
  /// offset.
  uint64_t Put(std::string_view s);

  /// The string stored at `offset`. Offsets must come from Put().
  std::string_view Get(uint64_t offset) const;

  /// Finds an already-interned string; returns false if absent.
  bool Find(std::string_view s, uint64_t* offset) const;

  /// Number of distinct strings interned.
  size_t DistinctCount() const { return intern_.size(); }

  /// Total heap bytes (including terminators).
  size_t ByteSize() const { return bytes_.size(); }

  /// Raw heap bytes (for persistence).
  const char* RawBytes() const { return bytes_.data(); }

  /// Replaces the heap content with `n` raw bytes (a sequence of
  /// null-terminated strings) and rebuilds the interning map. Used when
  /// loading a BAT from disk.
  void Restore(const char* bytes, size_t n);

 private:
  std::vector<char> bytes_;
  // Owned copies of interned strings -> offset. Keys are copies because
  // bytes_ reallocates; the memory overhead only matters for huge
  // high-cardinality string columns, which the experiments do not use.
  std::unordered_map<std::string, uint64_t> intern_;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_STRING_HEAP_H_
