#ifndef MAMMOTH_CORE_PERSIST_H_
#define MAMMOTH_CORE_PERSIST_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/bat.h"

namespace mammoth {

/// RAII wrapper over an mmap(2)ed file region.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(uint8_t* data, size_t size) : data_(data), size_(size) {}
  uint8_t* data_;
  size_t size_;
};

/// Writes a BAT to `path` in the MBAT binary format (header + tail payload
/// + optional string heap). Dense tails are materialized on write.
Status SaveBat(const Bat& b, const std::string& path);

/// Reads a BAT back, copying the payload into owned memory.
Result<BatPtr> LoadBat(const std::string& path);

/// Maps a numeric BAT zero-copy: the tail array aliases the page cache via
/// mmap, giving the paper's "columns as memory mapped files" behaviour (§3)
/// — the OS faults pages in on demand and positional lookup is a plain
/// array read. String BATs fall back to LoadBat (the interning map must be
/// rebuilt anyway).
Result<BatPtr> MapBat(const std::string& path);

class Table;
class Catalog;

/// Persists the table's *visible* image (deltas merged, deletes compacted)
/// into `dir`: a text manifest plus one MBAT file per column. Creates the
/// directory if needed; the table itself is not modified.
Status SaveTable(const Table& table, const std::string& dir);

/// Loads a table saved by SaveTable. With `use_mmap`, numeric columns are
/// mapped zero-copy (copy-on-write on first update).
Result<std::shared_ptr<Table>> LoadTable(const std::string& dir,
                                         bool use_mmap = false);

/// Persists/restores every table of a catalog under `dir/<table name>/`.
Status SaveCatalog(const Catalog& catalog, const std::string& dir);
Result<std::shared_ptr<Catalog>> LoadCatalog(const std::string& dir,
                                             bool use_mmap = false);

/// fsync(2) a file / directory. Directory sync is what makes a rename or
/// file creation itself durable — the WAL checkpoint protocol needs both.
Status SyncFile(const std::string& path);
Status SyncDir(const std::string& dir);

/// Recursively fsyncs every regular file under `dir`, then the directories
/// bottom-up. Used to make a freshly written snapshot durable before the
/// atomic rename publishes it.
Status SyncTree(const std::string& dir);

}  // namespace mammoth

#endif  // MAMMOTH_CORE_PERSIST_H_
