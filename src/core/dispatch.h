#ifndef MAMMOTH_CORE_DISPATCH_H_
#define MAMMOTH_CORE_DISPATCH_H_

#include <type_traits>

#include "common/result.h"
#include "core/types.h"

namespace mammoth {

/// Dispatches a physical type tag to a callable templated over the C++
/// element type. The callable receives `std::type_identity<T>{}`; kernels
/// recover T with `using T = typename decltype(tag)::type;`.
///
/// This is the mechanism behind "zero degrees of freedom" operators (§3):
/// the type switch happens once per *column*, and the per-type instantiation
/// is a tight loop with no interpretation inside.
template <typename Fn>
decltype(auto) DispatchNumeric(PhysType t, Fn&& fn) {
  switch (t) {
    case PhysType::kBool:
    case PhysType::kInt8:
      return fn(std::type_identity<int8_t>{});
    case PhysType::kInt16:
      return fn(std::type_identity<int16_t>{});
    case PhysType::kInt32:
      return fn(std::type_identity<int32_t>{});
    case PhysType::kInt64:
      return fn(std::type_identity<int64_t>{});
    case PhysType::kOid:
      return fn(std::type_identity<uint64_t>{});
    case PhysType::kFloat:
      return fn(std::type_identity<float>{});
    case PhysType::kDouble:
    default:
      return fn(std::type_identity<double>{});
  }
}

/// True when DispatchNumeric may be used on t.
inline bool DispatchableNumeric(PhysType t) { return t != PhysType::kStr; }

}  // namespace mammoth

#endif  // MAMMOTH_CORE_DISPATCH_H_
