#ifndef MAMMOTH_CORE_VALUE_H_
#define MAMMOTH_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/logging.h"
#include "core/types.h"

namespace mammoth {

/// A `?` placeholder of a prepared statement: carries only its ordinal
/// position. Placeholders exist solely between parsing and parameter
/// substitution — no kernel ever sees one.
struct ParamRef {
  uint32_t index = 0;
  bool operator==(const ParamRef&) const = default;
};

/// A single constant reaching the kernels from a front-end (a SQL literal, a
/// MAL constant). Kernels immediately narrow it to the BAT's physical type,
/// so Value deliberately keeps only three logical shapes: integer, real,
/// string — plus the transient prepared-statement placeholder.
class Value {
 public:
  Value() = default;

  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }
  static Value Nil() { return Value(); }
  static Value Param(uint32_t index) { return Value(Repr(ParamRef{index})); }

  bool is_nil() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_str() const { return std::holds_alternative<std::string>(repr_); }
  bool is_param() const { return std::holds_alternative<ParamRef>(repr_); }
  bool is_numeric() const { return is_int() || is_real(); }

  uint32_t param_index() const {
    MAMMOTH_DCHECK(is_param(), "Value::param_index on non-parameter");
    return std::get<ParamRef>(repr_).index;
  }

  int64_t AsInt() const {
    if (is_real()) return static_cast<int64_t>(std::get<double>(repr_));
    MAMMOTH_DCHECK(is_int(), "Value::AsInt on non-numeric");
    return std::get<int64_t>(repr_);
  }

  double AsReal() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(repr_));
    MAMMOTH_DCHECK(is_real(), "Value::AsReal on non-numeric");
    return std::get<double>(repr_);
  }

  const std::string& AsStr() const {
    MAMMOTH_DCHECK(is_str(), "Value::AsStr on non-string");
    return std::get<std::string>(repr_);
  }

  /// Narrows to the C++ type used by a kernel loop.
  template <typename T>
  T As() const {
    if constexpr (std::is_floating_point_v<T>) {
      return static_cast<T>(AsReal());
    } else {
      return static_cast<T>(AsInt());
    }
  }

  /// Printable form for plans and debugging.
  std::string ToString() const;

  bool operator==(const Value& other) const { return repr_ == other.repr_; }

 private:
  using Repr =
      std::variant<std::monostate, int64_t, double, std::string, ParamRef>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

/// Comparison operators understood by theta-selects and calc kernels.
/// kLike is string-only: SQL LIKE with `%` (any run) and `_` (any char)
/// wildcards; numeric kernels treat it as a type mismatch.
enum class CmpOp : uint8_t { kLt, kLe, kEq, kNe, kGe, kGt, kLike };

const char* CmpOpName(CmpOp op);

/// SQL LIKE matcher: `%` matches any run of characters (including empty),
/// `_` matches exactly one. Matching is case-sensitive, full-string.
bool LikeMatch(std::string_view s, std::string_view pattern);

/// True when `pattern` is a pure prefix pattern — literal text followed by a
/// single trailing `%` and containing no other wildcard. Such predicates
/// rewrite to a contiguous code range on a sorted dictionary.
bool LikePrefix(std::string_view pattern, std::string_view* prefix);

/// Applies `op` to already-narrowed operands; inlined into kernel loops.
template <typename T>
inline bool ApplyCmp(CmpOp op, T a, T b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kGe:
      return a >= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kLike:
      break;  // string-only; numeric callers reject before the loop
  }
  return false;
}

}  // namespace mammoth

#endif  // MAMMOTH_CORE_VALUE_H_
