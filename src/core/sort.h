#ifndef MAMMOTH_CORE_SORT_H_
#define MAMMOTH_CORE_SORT_H_

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::algebra {

/// Result of sorting a BAT.
struct SortResult {
  /// Tail values in order (ascending unless descending was requested).
  BatPtr sorted;
  /// Order index: bat[:oid] such that sorted[i] == b[order[i]]. This is the
  /// "selective replication with different sort orders" building block (§2).
  BatPtr order;
};

/// Stable sort by tail value. O(n log n) comparison sort for all types;
/// 32-bit integers additionally have an LSB radix-sort fast path.
Result<SortResult> Sort(const BatPtr& b, bool descending = false);

/// Returns the first `k` head OIDs of `b` in sorted tail order (top-k).
Result<BatPtr> TopN(const BatPtr& b, size_t k, bool descending = false);

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_SORT_H_
