#ifndef MAMMOTH_CORE_SORT_H_
#define MAMMOTH_CORE_SORT_H_

#include "common/result.h"
#include "core/bat.h"
#include "parallel/exec_context.h"

namespace mammoth::algebra {

/// Result of sorting a BAT.
struct SortResult {
  /// Tail values in order (ascending unless descending was requested).
  BatPtr sorted;
  /// Order index: bat[:oid] such that sorted[i] == b[order[i]]. This is the
  /// "selective replication with different sort orders" building block (§2).
  BatPtr order;
};

/// Result of a tie-aware ordering step (see RefineSort).
struct RefineSortResult {
  /// Refined order index: bat[:oid] of head OIDs of the sort column.
  BatPtr order;
  /// Non-decreasing tie-group ids aligned with `order`: rows sharing an id
  /// compared equal on every ordering key applied so far. Feed back into
  /// the next RefineSort to realize multi-column ORDER BY.
  BatPtr tie_groups;
  /// Number of distinct tie groups (== Count() when the order is total).
  size_t ngroups = 0;
};

/// Stable sort by tail value: the output permutation always equals the one
/// serial std::stable_sort produces (equal keys keep head order).
///
/// int32/int64/oid tails take an LSB radix path (parallel per-morsel
/// histograms + cross-morsel prefix sums); everything else runs
/// morsel-parallel stable run formation followed by a k-way loser-tree
/// merge with position tie-breaking. Both are bit-identical — values,
/// order BAT and properties — to the serial schedule for any `ctx`.
/// Inputs already carrying a matching `sorted`/`revsorted` property
/// short-circuit to a dense identity order (or a reversed order when the
/// `key` property additionally rules out ties) without any comparisons.
Result<SortResult> Sort(
    const BatPtr& b, bool descending = false,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

/// Returns the first `k` head OIDs of `b` in sorted tail order (top-k),
/// exactly the prefix of Sort(b, descending).order, without sorting:
/// every worker keeps a bounded k-element heap over its morsels and the
/// per-worker survivors are merged serially — O(n + k log k) work instead
/// of a full O(n log n) sort. `k > Count()` clamps; `k == 0` yields an
/// empty BAT.
Result<BatPtr> TopN(
    const BatPtr& b, size_t k, bool descending = false,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

/// Tie-aware ordering refinement (MonetDB's BATsort order/group chain,
/// the ordering twin of Group's subgroup refinement): stably reorders
/// `order` (null = the identity over b's head) so that rows are sorted by
/// b[order[i]] *within* each existing tie group from `tie_groups` (null =
/// one group spanning everything), then emits the refined order plus the
/// refined tie groups. Chaining RefineSort over ORDER BY keys — major key
/// first — sorts a full table while each refinement step only touches the
/// still-tied row ranges.
///
/// Equal-key rows keep their incoming order (stability), so the refined
/// order is deterministic; all sorting runs under `ctx` with bit-identical
/// results for any thread count.
Result<RefineSortResult> RefineSort(
    const BatPtr& b, const BatPtr& order = nullptr,
    const BatPtr& tie_groups = nullptr, bool descending = false,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_SORT_H_
