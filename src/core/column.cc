#include "core/column.h"

#include <cstdlib>

#include "common/bitutil.h"

namespace mammoth {

Column& Column::operator=(Column&& other) noexcept {
  if (this != &other) {
    Free();
    type_ = other.type_;
    width_ = other.width_;
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    owns_ = other.owns_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
    other.owns_ = true;
  }
  return *this;
}

void Column::Free() {
  if (owns_) std::free(data_);
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
  owns_ = true;
}

void Column::Reserve(size_t n) {
  if (n <= capacity_ && owns_) return;
  if (n < size_) n = size_;
  const size_t bytes = AlignUp(n * width_, kAlignment);
  auto* fresh = static_cast<uint8_t*>(std::aligned_alloc(kAlignment, bytes));
  MAMMOTH_CHECK(fresh != nullptr, "column allocation failed");
  if (size_ > 0) std::memcpy(fresh, data_, size_ * width_);
  if (owns_) std::free(data_);
  data_ = fresh;
  owns_ = true;
  capacity_ = bytes / width_;
}

void Column::AdoptExternal(void* data, size_t n) {
  Free();
  data_ = static_cast<uint8_t*>(data);
  size_ = n;
  capacity_ = n;
  owns_ = false;
}

void Column::Resize(size_t n) {
  if (n > capacity_) Reserve(n);
  size_ = n;
}

void Column::AppendRaw(const void* src, size_t n) {
  if (n == 0) return;
  if (size_ + n > capacity_) Reserve(NextPow2(size_ + n));
  std::memcpy(data_ + size_ * width_, src, n * width_);
  size_ += n;
}

Column Column::Clone() const {
  Column out(type_);
  out.Reserve(size_);
  if (size_ > 0) std::memcpy(out.data_, data_, size_ * width_);
  out.size_ = size_;
  return out;
}

}  // namespace mammoth
