#include "core/persist.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/catalog.h"
#include "core/table.h"

namespace mammoth {

namespace {

constexpr uint64_t kMagic = 0x3130544142424Dull;  // "MBBAT01"
constexpr size_t kHeaderSize = 64;

struct BatHeader {
  uint64_t magic;
  uint8_t type;
  uint8_t flags;  // bit0 sorted, bit1 revsorted, bit2 key
  uint8_t pad[6];
  uint64_t hseqbase;
  uint64_t count;
  uint64_t heap_bytes;
};
static_assert(sizeof(BatHeader) <= kHeaderSize);

}  // namespace

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap " + path + ": " + std::strerror(errno));
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<uint8_t*>(addr), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

Status SaveBat(const Bat& b, const std::string& path) {
  BatPtr materialized;
  const Bat* src = &b;
  if (b.IsDenseTail()) {
    materialized = b.Clone();
    materialized->MaterializeDense();
    src = materialized.get();
  }

  BatHeader hdr{};
  hdr.magic = kMagic;
  hdr.type = static_cast<uint8_t>(src->type());
  hdr.flags = (src->props().sorted ? 1 : 0) |
              (src->props().revsorted ? 2 : 0) | (src->props().key ? 4 : 0);
  hdr.hseqbase = src->hseqbase();
  hdr.count = src->Count();
  hdr.heap_bytes =
      src->type() == PhysType::kStr ? src->heap()->ByteSize() : 0;

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  uint8_t header_block[kHeaderSize] = {};
  std::memcpy(header_block, &hdr, sizeof(hdr));
  bool ok = std::fwrite(header_block, 1, kHeaderSize, f) == kHeaderSize;
  const size_t payload = src->Count() * TypeWidth(src->type());
  if (ok && payload > 0) {
    ok = std::fwrite(src->tail().raw_data(), 1, payload, f) == payload;
  }
  if (ok && hdr.heap_bytes > 0) {
    ok = std::fwrite(src->heap()->RawBytes(), 1, hdr.heap_bytes, f) ==
         hdr.heap_bytes;
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return Status::IOError("short write to " + path);
  return Status::OK();
}

namespace {

Result<BatHeader> ReadHeader(const MappedFile& mf, const std::string& path) {
  if (mf.size() < kHeaderSize) return Status::IOError(path + ": truncated");
  BatHeader hdr;
  std::memcpy(&hdr, mf.data(), sizeof(hdr));
  if (hdr.magic != kMagic) return Status::IOError(path + ": bad magic");
  if (hdr.type > static_cast<uint8_t>(PhysType::kStr)) {
    return Status::IOError(path + ": bad type tag");
  }
  const PhysType type = static_cast<PhysType>(hdr.type);
  const size_t need =
      kHeaderSize + hdr.count * TypeWidth(type) + hdr.heap_bytes;
  if (mf.size() < need) return Status::IOError(path + ": truncated payload");
  return hdr;
}

void ApplyFlags(const BatHeader& hdr, Bat* b) {
  b->set_hseqbase(hdr.hseqbase);
  b->mutable_props().sorted = (hdr.flags & 1) != 0;
  b->mutable_props().revsorted = (hdr.flags & 2) != 0;
  b->mutable_props().key = (hdr.flags & 4) != 0;
}

}  // namespace

Result<BatPtr> LoadBat(const std::string& path) {
  MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mf,
                           MappedFile::Open(path));
  MAMMOTH_ASSIGN_OR_RETURN(BatHeader hdr, ReadHeader(*mf, path));
  const PhysType type = static_cast<PhysType>(hdr.type);
  const uint8_t* payload = mf->data() + kHeaderSize;

  BatPtr b;
  if (type == PhysType::kStr) {
    b = Bat::NewString(nullptr);
    b->heap()->Restore(
        reinterpret_cast<const char*>(payload + hdr.count * TypeWidth(type)),
        hdr.heap_bytes);
  } else {
    b = Bat::New(type);
  }
  b->AppendRaw(payload, hdr.count);
  ApplyFlags(hdr, b.get());
  return b;
}

Result<BatPtr> MapBat(const std::string& path) {
  MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mf,
                           MappedFile::Open(path));
  MAMMOTH_ASSIGN_OR_RETURN(BatHeader hdr, ReadHeader(*mf, path));
  const PhysType type = static_cast<PhysType>(hdr.type);
  if (type == PhysType::kStr) return LoadBat(path);

  BatPtr b = Bat::New(type);
  // PROT_READ mapping: the tail is read-only; any writer path goes through
  // Column::Reserve which copies first (copy-on-write).
  b->tail().AdoptExternal(
      const_cast<uint8_t*>(mf->data() + kHeaderSize), hdr.count);
  ApplyFlags(hdr, b.get());
  b->set_keepalive(std::move(mf));
  return b;
}

namespace {

const char* TypeToken(PhysType t) { return TypeName(t); }

Result<PhysType> TypeFromToken(const std::string& token) {
  for (int i = 0; i <= static_cast<int>(PhysType::kStr); ++i) {
    const auto t = static_cast<PhysType>(i);
    if (token == TypeName(t)) return t;
  }
  return Status::IOError("unknown type token " + token);
}

}  // namespace

Status SaveTable(const Table& table, const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir);

  // Snapshot + merge: persist the visible image without touching the
  // original's deltas. Compressed columns keep their compressed image
  // (MergeDeltas re-encodes only when deltas were pending).
  TablePtr snap = table.Snapshot();
  MAMMOTH_RETURN_IF_ERROR(snap->MergeDeltas());

  std::ofstream manifest(dir + "/manifest");
  if (!manifest) return Status::IOError("cannot write manifest in " + dir);
  manifest << snap->name() << "\n" << snap->schema().size() << "\n";
  for (size_t i = 0; i < snap->schema().size(); ++i) {
    const ColumnDef& def = snap->schema()[i];
    const auto& comp = snap->CompressedColumn(i);
    if (comp != nullptr) {
      // Third token marks the column file as a compressed image
      // (col_<i>.cbat instead of col_<i>.mbat).
      manifest << def.name << " " << TypeToken(def.type) << " czip\n";
      std::string image;
      comp->Serialize(&image);
      const std::string path = dir + "/col_" + std::to_string(i) + ".cbat";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
      out.flush();
      if (!out) return Status::IOError("short write to " + path);
    } else if (snap->StringDictColumn(i) != nullptr) {
      // Dictionary-compressed string column: the .sdict image (sorted
      // dictionary + packed codes) replaces the offset tail + heap.
      manifest << def.name << " " << TypeToken(def.type) << " sdict\n";
      std::string image;
      snap->StringDictColumn(i)->Serialize(&image);
      const std::string path = dir + "/col_" + std::to_string(i) + ".sdict";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(image.data(), static_cast<std::streamsize>(image.size()));
      out.flush();
      if (!out) return Status::IOError("short write to " + path);
    } else {
      manifest << def.name << " " << TypeToken(def.type) << "\n";
      MAMMOTH_RETURN_IF_ERROR(SaveBat(
          *snap->MainColumn(i), dir + "/col_" + std::to_string(i) + ".mbat"));
    }
  }
  if (snap->compression_enabled()) manifest << "compressed\n";
  manifest.flush();
  if (!manifest) return Status::IOError("short manifest write in " + dir);
  return Status::OK();
}

Result<TablePtr> LoadTable(const std::string& dir, bool use_mmap) {
  std::ifstream manifest(dir + "/manifest");
  if (!manifest) return Status::IOError("no manifest in " + dir);
  std::string name;
  size_t ncols = 0;
  if (!std::getline(manifest, name) || !(manifest >> ncols) || ncols == 0) {
    return Status::IOError("bad manifest in " + dir);
  }
  std::vector<ColumnDef> schema;
  std::vector<BatPtr> columns;
  std::vector<std::shared_ptr<const compress::CompressedBat>> comps;
  std::vector<std::shared_ptr<const compress::StrDict>> sdicts;
  for (size_t i = 0; i < ncols; ++i) {
    ColumnDef def;
    std::string type_token;
    if (!(manifest >> def.name >> type_token)) {
      return Status::IOError("truncated manifest in " + dir);
    }
    MAMMOTH_ASSIGN_OR_RETURN(def.type, TypeFromToken(type_token));
    // Optional per-column flags occupy the rest of the line.
    std::string rest;
    std::getline(manifest, rest);
    const bool compressed = rest.find("czip") != std::string::npos;
    const bool dict = rest.find("sdict") != std::string::npos;
    BatPtr col;
    std::shared_ptr<const compress::CompressedBat> comp;
    std::shared_ptr<const compress::StrDict> sdict;
    if (compressed) {
      const std::string path = dir + "/col_" + std::to_string(i) + ".cbat";
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      if (!in.good() && !in.eof()) return Status::IOError("read " + path);
      std::string image = std::move(buf).str();
      MAMMOTH_ASSIGN_OR_RETURN(compress::CompressedBat cb,
                               compress::CompressedBat::Deserialize(image));
      comp = std::make_shared<const compress::CompressedBat>(std::move(cb));
    } else if (dict) {
      const std::string path = dir + "/col_" + std::to_string(i) + ".sdict";
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      if (!in.good() && !in.eof()) return Status::IOError("read " + path);
      std::string image = std::move(buf).str();
      MAMMOTH_ASSIGN_OR_RETURN(compress::StrDict sd,
                               compress::StrDict::Deserialize(image));
      sdict = std::make_shared<const compress::StrDict>(std::move(sd));
    } else {
      const std::string path = dir + "/col_" + std::to_string(i) + ".mbat";
      if (use_mmap) {
        MAMMOTH_ASSIGN_OR_RETURN(col, MapBat(path));
      } else {
        MAMMOTH_ASSIGN_OR_RETURN(col, LoadBat(path));
      }
    }
    schema.push_back(std::move(def));
    columns.push_back(std::move(col));
    comps.push_back(std::move(comp));
    sdicts.push_back(std::move(sdict));
  }
  std::string policy_token;
  const bool policy = (manifest >> policy_token) && policy_token == "compressed";
  return Table::FromStorage(std::move(name), std::move(schema),
                            std::move(columns), std::move(comps),
                            std::move(sdicts), policy);
}

Status SaveCatalog(const Catalog& catalog, const std::string& dir) {
  for (const std::string& name : catalog.TableNames()) {
    MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog.Get(name));
    MAMMOTH_RETURN_IF_ERROR(SaveTable(*t, dir + "/" + name));
  }
  return Status::OK();
}

Result<std::shared_ptr<Catalog>> LoadCatalog(const std::string& dir,
                                             bool use_mmap) {
  namespace fs = std::filesystem;
  auto catalog = std::make_shared<Catalog>();
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IOError("cannot read " + dir);
  for (const auto& entry : it) {
    if (!entry.is_directory()) continue;
    MAMMOTH_ASSIGN_OR_RETURN(TablePtr t,
                             LoadTable(entry.path().string(), use_mmap));
    MAMMOTH_RETURN_IF_ERROR(catalog->Register(std::move(t)));
  }
  return catalog;
}

namespace {

Status SyncFd(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IOError("open for fsync " + path + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Status SyncFile(const std::string& path) { return SyncFd(path, O_RDONLY); }

Status SyncDir(const std::string& dir) {
  return SyncFd(dir, O_RDONLY | O_DIRECTORY);
}

Status SyncTree(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      MAMMOTH_RETURN_IF_ERROR(SyncFile(it->path().string()));
    } else if (it->is_directory(ec)) {
      MAMMOTH_RETURN_IF_ERROR(SyncDir(it->path().string()));
    }
  }
  if (ec) return Status::IOError("walk " + dir + ": " + ec.message());
  return SyncDir(dir);
}

}  // namespace mammoth
