#ifndef MAMMOTH_CORE_COLUMN_H_
#define MAMMOTH_CORE_COLUMN_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "common/logging.h"
#include "core/types.h"

namespace mammoth {

/// A typed, cache-line-aligned, growable memory array — the "simple memory
/// array" that backs a BAT tail (§3, Figure 1). Columns own their storage.
class Column {
 public:
  /// Alignment of the data buffer; one x86 cache line.
  static constexpr size_t kAlignment = 64;

  explicit Column(PhysType type) : type_(type), width_(TypeWidth(type)) {}

  // Move-only: a Column owns a large buffer; copies must be explicit.
  Column(Column&& other) noexcept { *this = std::move(other); }
  Column& operator=(Column&& other) noexcept;
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;
  ~Column() { Free(); }

  PhysType type() const { return type_; }
  size_t width() const { return width_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Raw byte pointer to slot 0.
  void* raw_data() { return data_; }
  const void* raw_data() const { return data_; }

  /// Typed pointer to slot 0. T must match the physical width of the
  /// column's type (checked in debug builds).
  template <typename T>
  T* Data() {
    MAMMOTH_DCHECK(sizeof(T) == width_, "typed access width mismatch");
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* Data() const {
    MAMMOTH_DCHECK(sizeof(T) == width_, "typed access width mismatch");
    return reinterpret_cast<const T*>(data_);
  }

  /// Ensures capacity for at least n elements (never shrinks).
  void Reserve(size_t n);

  /// Sets the element count; grows capacity as needed. New slots are
  /// uninitialized.
  void Resize(size_t n);

  /// Appends a single value.
  template <typename T>
  void Append(T v) {
    MAMMOTH_DCHECK(sizeof(T) == width_, "typed append width mismatch");
    if (size_ == capacity_) Reserve(size_ < 16 ? 16 : size_ * 2);
    reinterpret_cast<T*>(data_)[size_++] = v;
  }

  /// Appends `n` elements from a raw buffer of matching width.
  void AppendRaw(const void* src, size_t n);

  /// Deep copy of this column.
  Column Clone() const;

  /// Points the column at externally owned memory (e.g. a memory-mapped
  /// file, §3). The column will not free it; any growth first copies the
  /// data into owned storage (copy-on-write).
  void AdoptExternal(void* data, size_t n);

  /// True when the buffer is owned (and thus writable in place).
  bool owns() const { return owns_; }

 private:
  void Free();

  PhysType type_;
  size_t width_ = 0;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  bool owns_ = true;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_COLUMN_H_
