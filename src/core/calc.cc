#include "core/calc.h"

#include "core/dispatch.h"

namespace mammoth::algebra {

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

namespace {

PhysType PromoteType(PhysType a, PhysType b) {
  if (IsFloating(a) || IsFloating(b)) return PhysType::kDouble;
  if (TypeWidth(a) == 8 || TypeWidth(b) == 8) return PhysType::kInt64;
  return a;  // both inputs share a (validated) common narrow type
}

template <typename Out, typename Fa, typename Fb>
Result<BatPtr> Loop(ArithOp op, size_t n, Fa a_at, Fb b_at, PhysType out_type) {
  BatPtr r = Bat::New(out_type);
  r->Resize(n);
  Out* out = r->MutableTailData<Out>();
  switch (op) {
    case ArithOp::kAdd:
      for (size_t i = 0; i < n; ++i) out[i] = a_at(i) + b_at(i);
      break;
    case ArithOp::kSub:
      for (size_t i = 0; i < n; ++i) out[i] = a_at(i) - b_at(i);
      break;
    case ArithOp::kMul:
      for (size_t i = 0; i < n; ++i) out[i] = a_at(i) * b_at(i);
      break;
    case ArithOp::kDiv:
      if constexpr (std::is_integral_v<Out>) {
        for (size_t i = 0; i < n; ++i) {
          if (b_at(i) == 0) return Status::InvalidArgument("division by zero");
          out[i] = a_at(i) / b_at(i);
        }
      } else {
        for (size_t i = 0; i < n; ++i) out[i] = a_at(i) / b_at(i);
      }
      break;
    case ArithOp::kMod:
      if constexpr (std::is_integral_v<Out>) {
        for (size_t i = 0; i < n; ++i) {
          if (b_at(i) == 0) return Status::InvalidArgument("modulo by zero");
          out[i] = a_at(i) % b_at(i);
        }
      } else {
        return Status::TypeMismatch("modulo on floating type");
      }
      break;
  }
  return r;
}

BatPtr MaterializedCopy(const BatPtr& b) {
  if (!b->IsDenseTail()) return b;
  BatPtr m = b->Clone();
  m->MaterializeDense();
  return m;
}

template <typename Out>
Result<BatPtr> RunBinary(ArithOp op, const BatPtr& a, const BatPtr& b,
                         PhysType out_type) {
  const size_t n = a->Count();
  return DispatchNumeric(a->type(), [&](auto ta) -> Result<BatPtr> {
    using A = typename decltype(ta)::type;
    const A* av = a->TailData<A>();
    return DispatchNumeric(b->type(), [&](auto tb) -> Result<BatPtr> {
      using B = typename decltype(tb)::type;
      const B* bv = b->TailData<B>();
      return Loop<Out>(
          op, n, [av](size_t i) { return static_cast<Out>(av[i]); },
          [bv](size_t i) { return static_cast<Out>(bv[i]); }, out_type);
    });
  });
}

}  // namespace

Result<BatPtr> CalcBinary(ArithOp op, const BatPtr& a, const BatPtr& b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("calc: null input");
  }
  if (a->Count() != b->Count()) {
    return Status::InvalidArgument("calc: inputs misaligned");
  }
  if (a->type() == PhysType::kStr || b->type() == PhysType::kStr) {
    return Status::TypeMismatch("calc: arithmetic on strings");
  }
  const BatPtr am = MaterializedCopy(a);
  const BatPtr bm = MaterializedCopy(b);
  const PhysType out_type = PromoteType(am->type(), bm->type());
  if (out_type == PhysType::kDouble) {
    return RunBinary<double>(op, am, bm, out_type);
  }
  if (out_type == PhysType::kInt64) {
    return RunBinary<int64_t>(op, am, bm, out_type);
  }
  return DispatchNumeric(out_type, [&](auto tag) -> Result<BatPtr> {
    using Out = typename decltype(tag)::type;
    return RunBinary<Out>(op, am, bm, out_type);
  });
}

namespace {

/// True when the integer constant is representable in the column's type,
/// so `col op const` can stay at the column's width.
bool FitsIntegral(PhysType t, int64_t v) {
  switch (t) {
    case PhysType::kBool:
    case PhysType::kInt8:
      return v >= INT8_MIN && v <= INT8_MAX;
    case PhysType::kInt16:
      return v >= INT16_MIN && v <= INT16_MAX;
    case PhysType::kInt32:
      return v >= INT32_MIN && v <= INT32_MAX;
    case PhysType::kInt64:
    case PhysType::kOid:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<BatPtr> CalcScalar(ArithOp op, const BatPtr& a, const Value& v) {
  if (a == nullptr) return Status::InvalidArgument("calc: null input");
  if (a->type() == PhysType::kStr || !v.is_numeric()) {
    return Status::TypeMismatch("calc: arithmetic on non-numeric");
  }
  const BatPtr am = MaterializedCopy(a);
  // An integer constant that fits the column's type keeps the column's
  // width (batcalc semantics); otherwise it forces the usual promotion.
  const PhysType vtype =
      v.is_real() ? PhysType::kDouble
                  : (FitsIntegral(am->type(), v.AsInt()) ? am->type()
                                                         : PhysType::kInt64);
  const PhysType out_type = PromoteType(am->type(), vtype);
  const size_t n = am->Count();

  auto run = [&](auto out_tag) -> Result<BatPtr> {
    using Out = typename decltype(out_tag)::type;
    const Out cv = v.As<Out>();
    return DispatchNumeric(am->type(), [&](auto ta) -> Result<BatPtr> {
      using A = typename decltype(ta)::type;
      const A* av = am->TailData<A>();
      return Loop<Out>(
          op, n, [av](size_t i) { return static_cast<Out>(av[i]); },
          [cv](size_t) { return cv; }, out_type);
    });
  };
  if (out_type == PhysType::kDouble) return run(std::type_identity<double>{});
  if (out_type == PhysType::kInt64) return run(std::type_identity<int64_t>{});
  return DispatchNumeric(out_type,
                         [&](auto tag) -> Result<BatPtr> { return run(tag); });
}

Result<BatPtr> CalcCompare(CmpOp op, const BatPtr& a, const BatPtr& b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("calc: null input");
  }
  if (a->Count() != b->Count()) {
    return Status::InvalidArgument("calc: inputs misaligned");
  }
  if (a->type() == PhysType::kStr || b->type() == PhysType::kStr) {
    return Status::Unimplemented("compare on strings");
  }
  const BatPtr am = MaterializedCopy(a);
  const BatPtr bm = MaterializedCopy(b);
  const size_t n = am->Count();
  BatPtr r = Bat::New(PhysType::kBool);
  r->Resize(n);
  int8_t* out = r->MutableTailData<int8_t>();
  DispatchNumeric(am->type(), [&](auto ta) {
    using A = typename decltype(ta)::type;
    const A* av = am->TailData<A>();
    DispatchNumeric(bm->type(), [&](auto tb) {
      using B = typename decltype(tb)::type;
      const B* bv = bm->TailData<B>();
      for (size_t i = 0; i < n; ++i) {
        out[i] = ApplyCmp(op, static_cast<double>(av[i]),
                          static_cast<double>(bv[i]))
                     ? 1
                     : 0;
      }
    });
  });
  return r;
}

}  // namespace mammoth::algebra
