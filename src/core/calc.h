#ifndef MAMMOTH_CORE_CALC_H_
#define MAMMOTH_CORE_CALC_H_

#include "common/result.h"
#include "core/bat.h"
#include "core/value.h"

namespace mammoth::algebra {

/// Arithmetic ops of the batcalc module.
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };

const char* ArithOpName(ArithOp op);

/// Element-wise `a op b` over two head-aligned BATs. Result type promotion:
/// any floating operand -> :dbl, else any 64-bit operand -> :lng, else the
/// (common) input type. Integer division/modulo by zero is an error.
Result<BatPtr> CalcBinary(ArithOp op, const BatPtr& a, const BatPtr& b);

/// Element-wise `a op v` against a constant.
Result<BatPtr> CalcScalar(ArithOp op, const BatPtr& a, const Value& v);

/// Element-wise comparison producing a bat[:bit] of 0/1 — used by the
/// Volcano baseline's expression trees, not by the BAT algebra itself
/// (which uses selects over candidate lists instead).
Result<BatPtr> CalcCompare(CmpOp op, const BatPtr& a, const BatPtr& b);

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_CALC_H_
