#ifndef MAMMOTH_CORE_TABLE_H_
#define MAMMOTH_CORE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "compress/compressed_bat.h"
#include "compress/dict_str.h"
#include "core/bat.h"
#include "core/value.h"

namespace mammoth {

/// One column of a relational schema.
struct ColumnDef {
  std::string name;
  PhysType type;
};

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A relational table decomposed by column into BATs with dense (non-stored)
/// heads, exactly as the SQL front-end of §3.2: per column a main BAT plus a
/// pending-insert delta BAT, and one shared BAT of deleted positions. Delta
/// BATs delay updates to the main columns and make snapshots cheap (only the
/// deltas are copied).
class Table {
 public:
  static Result<TablePtr> Create(std::string name,
                                 std::vector<ColumnDef> schema);

  /// Creates a table adopting existing column BATs as the main storage
  /// (used by persistence; `columns` must match the schema arity/types and
  /// have equal counts).
  static Result<TablePtr> FromColumns(std::string name,
                                      std::vector<ColumnDef> schema,
                                      std::vector<BatPtr> columns);

  /// Persistence entry point for mixed representations: per column exactly
  /// one of `mains[i]` (uncompressed), `comps[i]` (compressed int), or
  /// `sdicts[i]` (dictionary-compressed string; the plain BAT is rebuilt at
  /// load) is set. All representations must agree on the row count;
  /// `policy` restores the table's compression policy flag.
  static Result<TablePtr> FromStorage(
      std::string name, std::vector<ColumnDef> schema,
      std::vector<BatPtr> mains,
      std::vector<std::shared_ptr<const compress::CompressedBat>> comps,
      std::vector<std::shared_ptr<const compress::StrDict>> sdicts,
      bool policy);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& schema() const { return schema_; }
  size_t NumColumns() const { return schema_.size(); }

  /// Index of a named column, or NotFound.
  Result<size_t> ColumnIndex(std::string_view column_name) const;

  /// Rows visible to readers: main + inserts - deletes.
  size_t VisibleRowCount() const;

  /// Rows physically present (main + inserts, ignoring deletes).
  size_t PhysicalRowCount() const;

  /// Appends one row; `row` must match the schema arity and types
  /// (numeric values are narrowed to the column type).
  Status Insert(const std::vector<Value>& row);

  /// Marks the given head OIDs deleted (visible effect immediate).
  Status Delete(const BatPtr& oids);

  /// The *merged* read image of a column: main ++ inserts, one BAT. Cheap
  /// when no pending inserts exist (returns the main BAT itself).
  Result<BatPtr> ScanColumn(size_t idx) const;
  Result<BatPtr> ScanColumn(std::string_view column_name) const;

  /// Candidate list of live (non-deleted) positions, or nullptr when
  /// nothing was ever deleted ("all rows").
  BatPtr LiveCandidates() const;

  /// Folds pending inserts into the main BATs and compacts deleted rows
  /// away (OIDs are renumbered densely). The relational equivalent of a
  /// checkpoint.
  Status MergeDeltas();

  /// Snapshot sharing main BATs but with copied deltas: writes to either
  /// side are invisible to the other as long as neither calls MergeDeltas().
  TablePtr Snapshot() const;

  /// A point-in-time marker of the delta state, cheap to take (no data is
  /// copied: Delete() replaces the deleted-list BAT wholesale, so holding
  /// the old pointer preserves it). Valid until the next MergeDeltas().
  struct DeltaMark {
    size_t insert_rows = 0;  ///< pending insert-delta length at the mark
    BatPtr deleted;          ///< deleted-list BAT at the mark
    uint64_t version = 0;
  };

  /// Marks the current delta state so a failing multi-row statement can
  /// be rolled back to it (statement atomicity: the engine takes a mark,
  /// applies every row, and restores the mark if any row fails).
  DeltaMark Mark() const;

  /// Reverts all Insert()/Delete() calls made since `mark` was taken.
  /// Undefined if MergeDeltas() ran in between (the engine's exclusive
  /// lock prevents that).
  void Rollback(const DeltaMark& mark);

  /// Number of pending (unmerged) inserted rows.
  size_t PendingInsertCount() const {
    return inserts_.empty() ? 0 : inserts_[0]->Count();
  }
  /// Number of deleted, not-yet-compacted rows.
  size_t DeletedCount() const { return deleted_->Count(); }

  /// Direct access to the main BAT of a column (bench/test aid; bypasses
  /// deltas). Empty stub when the column's main image is compressed.
  const BatPtr& MainColumn(size_t idx) const { return mains_[idx]; }

  /// --- Compression (§5: compressed columns as first-class storage) ----

  /// Turns the compression policy on or off and converts the main image
  /// of every eligible column (int/bigint) right away: on compresses via
  /// CompressBest, off decodes back to plain BATs. Pending deltas are
  /// untouched (they sit on top of either representation and fold in at
  /// the next MergeDeltas). Bumps the version.
  Status SetCompression(bool on);

  /// True when new/merged int columns are stored compressed.
  bool compression_enabled() const { return compress_policy_; }

  /// The compressed main image of a column, or nullptr when the column is
  /// stored uncompressed.
  const std::shared_ptr<const compress::CompressedBat>& CompressedColumn(
      size_t idx) const {
    return compressed_[idx];
  }

  /// The dictionary image of a string column, or nullptr when the column
  /// has none (policy off, or cardinality above StrDict::kMaxDistinct).
  /// Unlike int columns the plain BAT stays resident — offset identity
  /// anchors deltas, joins, and group-by — so the dictionary is the
  /// *execution and persistence* image: code-space predicates scan it, and
  /// snapshots write it instead of the heap.
  const std::shared_ptr<const compress::StrDict>& StringDictColumn(
      size_t idx) const {
    return str_dicts_[idx];
  }

  /// Number of columns currently stored compressed (int codecs + string
  /// dictionaries).
  size_t CompressedColumnCount() const;
  /// Compressed bytes across compressed columns, and the uncompressed
  /// bytes those columns stand for.
  size_t CompressedBytesTotal() const;
  size_t CompressedLogicalBytesTotal() const;
  /// Bytes pinned by whole-column decode caches of compressed int columns.
  size_t CompressedCacheBytesTotal() const;

  /// Monotone version counter, bumped by every Insert/Delete/MergeDeltas.
  /// Cached intermediates (the recycler, §6.1) key on it to invalidate
  /// results computed over stale table contents.
  uint64_t version() const { return version_; }

 private:
  Table(std::string name, std::vector<ColumnDef> schema);

  static BatPtr NewColumnBat(const ColumnDef& def);

  /// Rows in the main image, whatever its representation.
  size_t MainRowCount() const {
    return compressed_[0] != nullptr ? compressed_[0]->Count()
                                     : mains_[0]->Count();
  }

  /// True when the column type has a codec.
  static bool Compressible(PhysType t) {
    return t == PhysType::kInt32 || t == PhysType::kInt64;
  }

  std::string name_;
  std::vector<ColumnDef> schema_;
  std::vector<BatPtr> mains_;
  /// Parallel to mains_: non-null when the column's main image lives in
  /// compressed form (mains_[i] is then an empty stub).
  std::vector<std::shared_ptr<const compress::CompressedBat>> compressed_;
  /// Parallel to mains_: the dictionary image of a string column under the
  /// compression policy (mains_[i] stays the plain execution image).
  std::vector<std::shared_ptr<const compress::StrDict>> str_dicts_;
  std::vector<BatPtr> inserts_;
  BatPtr deleted_;  // sorted oid BAT of deleted head positions
  bool compress_policy_ = false;
  uint64_t version_ = 0;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_TABLE_H_
