#ifndef MAMMOTH_CORE_TABLE_H_
#define MAMMOTH_CORE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "compress/compressed_bat.h"
#include "compress/dict_str.h"
#include "core/bat.h"
#include "core/value.h"
#include "txn/txn.h"

namespace mammoth {

/// One column of a relational schema.
struct ColumnDef {
  std::string name;
  PhysType type;
};

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A relational table decomposed by column into BATs with dense (non-stored)
/// heads, exactly as the SQL front-end of §3.2: per column a main BAT plus a
/// pending-insert delta BAT, and one shared BAT of deleted positions. Delta
/// BATs delay updates to the main columns and make snapshots cheap (only the
/// deltas are copied).
class Table {
 public:
  static Result<TablePtr> Create(std::string name,
                                 std::vector<ColumnDef> schema);

  /// Creates a table adopting existing column BATs as the main storage
  /// (used by persistence; `columns` must match the schema arity/types and
  /// have equal counts).
  static Result<TablePtr> FromColumns(std::string name,
                                      std::vector<ColumnDef> schema,
                                      std::vector<BatPtr> columns);

  /// Persistence entry point for mixed representations: per column exactly
  /// one of `mains[i]` (uncompressed), `comps[i]` (compressed int), or
  /// `sdicts[i]` (dictionary-compressed string; the plain BAT is rebuilt at
  /// load) is set. All representations must agree on the row count;
  /// `policy` restores the table's compression policy flag.
  static Result<TablePtr> FromStorage(
      std::string name, std::vector<ColumnDef> schema,
      std::vector<BatPtr> mains,
      std::vector<std::shared_ptr<const compress::CompressedBat>> comps,
      std::vector<std::shared_ptr<const compress::StrDict>> sdicts,
      bool policy);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& schema() const { return schema_; }
  size_t NumColumns() const { return schema_.size(); }

  /// Index of a named column, or NotFound.
  Result<size_t> ColumnIndex(std::string_view column_name) const;

  /// Rows visible to readers: main + inserts - deletes.
  size_t VisibleRowCount() const;

  /// Rows physically present (main + inserts, ignoring deletes).
  size_t PhysicalRowCount() const;

  /// Appends one row; `row` must match the schema arity and types
  /// (numeric values are narrowed to the column type). `stamp` is the
  /// row's commit stamp: kVisibleToAll for pre-transactional callers
  /// (recovery, direct embedding), txn::PendingStamp(id) for a
  /// transaction's uncommitted write (made durable by CommitVersions).
  Status Insert(const std::vector<Value>& row,
                uint64_t stamp = txn::kVisibleToAll);

  /// Marks the given head OIDs deleted under `stamp` (same convention as
  /// Insert). With `snap` set, enforces first-writer-wins: a target row
  /// already carrying a delete mark the snapshot does *not* see (another
  /// transaction's pending or later-committed delete) fails the whole
  /// call with kConflict before anything is mutated.
  Status Delete(const BatPtr& oids, uint64_t stamp = txn::kVisibleToAll,
                const txn::Snapshot* snap = nullptr);

  /// The *merged* read image of a column: main ++ inserts, one BAT. Cheap
  /// when no pending inserts exist (returns the main BAT itself).
  Result<BatPtr> ScanColumn(size_t idx) const;
  Result<BatPtr> ScanColumn(std::string_view column_name) const;

  /// Candidate list of live (non-deleted) positions, or nullptr when
  /// nothing was ever deleted ("all rows"). Stamp-blind: counts every
  /// insert and every delete mark regardless of commit state — correct
  /// only at quiescence (checkpoints, persistence, recovery equality).
  BatPtr LiveCandidates() const;

  /// --- MVCC (§14: versioned deltas) -----------------------------------
  ///
  /// Every pending insert row and delete mark carries a commit stamp
  /// (txn/txn.h). Readers resolve visibility through candidate lists:
  /// ScanColumn stays the full physical merge, and VisibleCandidates
  /// excludes the positions a snapshot must not see.

  /// Candidate list of the positions visible to `snap`: rows whose insert
  /// stamp the snapshot sees, minus rows whose delete mark it sees.
  /// Returns a dense range when the visible set is a prefix (the common
  /// case: another transaction's uncommitted rows are the delta tail).
  BatPtr VisibleCandidates(const txn::Snapshot& snap) const;

  /// A key identifying the table content visible to `snap`, stable across
  /// other transactions' pending writes: recycler signatures hash it so a
  /// writer appending uncommitted rows no longer invalidates an unrelated
  /// reader's cached intermediates. Composed of the all-visible epoch,
  /// the latest commit at or before the snapshot, and (for the pending
  /// owner itself) its own write progress.
  uint64_t VisibleStateKey(const txn::Snapshot& snap) const;

  /// Claims this table for transaction `txn_id`'s writes. Returns false —
  /// without mutating anything — when another transaction holds it
  /// (write-write conflict; the caller surfaces kConflict). Idempotent
  /// for the current owner. The single-owner rule is what makes ROLLBACK
  /// a physical truncation: a transaction's pending rows are always the
  /// contiguous tail of the insert delta.
  bool AcquireWrite(uint64_t txn_id);
  /// Releases the claim if `txn_id` holds it (COMMIT or ROLLBACK).
  void ReleaseWrite(uint64_t txn_id);
  /// Transaction currently holding the write claim, 0 when unclaimed.
  uint64_t pending_owner() const { return pending_owner_; }

  /// Restamps every pending stamp of `txn_id` to `commit_ts`, records the
  /// commit in the visibility history, and releases the write claim.
  /// Caller holds the engine's exclusive lock: from this point snapshots
  /// at >= commit_ts see the rows.
  void CommitVersions(uint64_t txn_id, uint64_t commit_ts);

  /// Records a commit at `commit_ts` that was applied already-stamped
  /// (replica replay writes committed stamps directly under the exclusive
  /// lock), so VisibleStateKey moves forward.
  void NoteCommit(uint64_t commit_ts);

  /// Folds pending inserts into the main BATs and compacts deleted rows
  /// away (OIDs are renumbered densely). The relational equivalent of a
  /// checkpoint.
  Status MergeDeltas();

  /// Snapshot sharing main BATs but with copied deltas: writes to either
  /// side are invisible to the other as long as neither calls MergeDeltas().
  TablePtr Snapshot() const;

  /// A point-in-time marker of the delta state, cheap to take (no data is
  /// copied: Delete() replaces the deleted-list BAT wholesale, so holding
  /// the old pointer preserves it). Valid until the next MergeDeltas().
  struct DeltaMark {
    size_t insert_rows = 0;  ///< pending insert-delta length at the mark
    BatPtr deleted;          ///< deleted-list BAT at the mark
    /// Stamps parallel to `deleted` (replaced wholesale together).
    std::shared_ptr<const std::vector<uint64_t>> deleted_stamps;
    uint64_t version = 0;
  };

  /// Marks the current delta state so a failing multi-row statement can
  /// be rolled back to it (statement atomicity: the engine takes a mark,
  /// applies every row, and restores the mark if any row fails).
  DeltaMark Mark() const;

  /// Reverts all Insert()/Delete() calls made since `mark` was taken.
  /// Undefined if MergeDeltas() ran in between (the engine's exclusive
  /// lock prevents that).
  void Rollback(const DeltaMark& mark);

  /// Number of pending (unmerged) inserted rows.
  size_t PendingInsertCount() const {
    return inserts_.empty() ? 0 : inserts_[0]->Count();
  }
  /// Number of deleted, not-yet-compacted rows.
  size_t DeletedCount() const { return deleted_->Count(); }

  /// Direct access to the main BAT of a column (bench/test aid; bypasses
  /// deltas). Empty stub when the column's main image is compressed.
  const BatPtr& MainColumn(size_t idx) const { return mains_[idx]; }

  /// --- Compression (§5: compressed columns as first-class storage) ----

  /// Turns the compression policy on or off and converts the main image
  /// of every eligible column (int/bigint) right away: on compresses via
  /// CompressBest, off decodes back to plain BATs. Pending deltas are
  /// untouched (they sit on top of either representation and fold in at
  /// the next MergeDeltas). Bumps the version.
  Status SetCompression(bool on);

  /// True when new/merged int columns are stored compressed.
  bool compression_enabled() const { return compress_policy_; }

  /// The compressed main image of a column, or nullptr when the column is
  /// stored uncompressed.
  const std::shared_ptr<const compress::CompressedBat>& CompressedColumn(
      size_t idx) const {
    return compressed_[idx];
  }

  /// The dictionary image of a string column, or nullptr when the column
  /// has none (policy off, or cardinality above StrDict::kMaxDistinct).
  /// Unlike int columns the plain BAT stays resident — offset identity
  /// anchors deltas, joins, and group-by — so the dictionary is the
  /// *execution and persistence* image: code-space predicates scan it, and
  /// snapshots write it instead of the heap.
  const std::shared_ptr<const compress::StrDict>& StringDictColumn(
      size_t idx) const {
    return str_dicts_[idx];
  }

  /// Number of columns currently stored compressed (int codecs + string
  /// dictionaries).
  size_t CompressedColumnCount() const;
  /// Compressed bytes across compressed columns, and the uncompressed
  /// bytes those columns stand for.
  size_t CompressedBytesTotal() const;
  size_t CompressedLogicalBytesTotal() const;
  /// Bytes pinned by whole-column decode caches of compressed int columns.
  size_t CompressedCacheBytesTotal() const;

  /// Monotone *physical* version counter, bumped by every
  /// Insert/Delete/MergeDeltas. Keys caches tied to the physical column
  /// image (shared-scan zone maps, decode buffers); snapshot-dependent
  /// caches key on VisibleStateKey instead.
  uint64_t version() const { return version_; }

 private:
  Table(std::string name, std::vector<ColumnDef> schema);

  static BatPtr NewColumnBat(const ColumnDef& def);

  /// Rows in the main image, whatever its representation.
  size_t MainRowCount() const {
    return compressed_[0] != nullptr ? compressed_[0]->Count()
                                     : mains_[0]->Count();
  }

  /// True when the column type has a codec.
  static bool Compressible(PhysType t) {
    return t == PhysType::kInt32 || t == PhysType::kInt64;
  }

  std::string name_;
  std::vector<ColumnDef> schema_;
  std::vector<BatPtr> mains_;
  /// Parallel to mains_: non-null when the column's main image lives in
  /// compressed form (mains_[i] is then an empty stub).
  std::vector<std::shared_ptr<const compress::CompressedBat>> compressed_;
  /// Parallel to mains_: the dictionary image of a string column under the
  /// compression policy (mains_[i] stays the plain execution image).
  std::vector<std::shared_ptr<const compress::StrDict>> str_dicts_;
  std::vector<BatPtr> inserts_;
  /// One commit stamp per pending insert row (parallel to inserts_[i]).
  std::vector<uint64_t> insert_stamps_;
  BatPtr deleted_;  // sorted oid BAT of deleted head positions
  /// One commit stamp per delete mark (parallel to deleted_; replaced
  /// wholesale with it, so DeltaMark can hold both pointers).
  std::shared_ptr<const std::vector<uint64_t>> deleted_stamps_;
  /// Transaction holding the write claim (0 = none).
  uint64_t pending_owner_ = 0;
  /// (commit_ts, physical version) per commit since the last MergeDeltas,
  /// ascending; VisibleStateKey picks the last entry <= snapshot ts.
  std::vector<std::pair<uint64_t, uint64_t>> commit_history_;
  /// Epoch of the all-visible image: bumped by stamp-0 mutations,
  /// MergeDeltas, SetCompression, and Rollback.
  uint64_t all_visible_version_ = 0;
  bool compress_policy_ = false;
  uint64_t version_ = 0;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_TABLE_H_
