#include "core/value.h"

namespace mammoth {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kLike:
      return "like";
  }
  return "?";
}

bool LikeMatch(std::string_view s, std::string_view pattern) {
  // Iterative glob match with single-star backtracking: on mismatch after a
  // `%`, re-anchor the pattern one character further into `s`. Linear in
  // practice; worst case O(|s| * |pattern|).
  size_t si = 0, pi = 0;
  size_t star_pi = std::string_view::npos, star_si = 0;
  while (si < s.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == s[si])) {
      ++si;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_si = si;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      si = ++star_si;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

bool LikePrefix(std::string_view pattern, std::string_view* prefix) {
  if (pattern.empty() || pattern.back() != '%') return false;
  std::string_view head = pattern.substr(0, pattern.size() - 1);
  if (head.find_first_of("%_") != std::string_view::npos) return false;
  *prefix = head;
  return true;
}

std::string Value::ToString() const {
  if (is_nil()) return "nil";
  // Each placeholder stringifies uniquely per ordinal, so optimizer CSE
  // keys built from ToString() never merge distinct parameters.
  if (is_param()) return "?" + std::to_string(param_index());
  if (is_int()) return std::to_string(std::get<int64_t>(repr_));
  if (is_real()) return std::to_string(std::get<double>(repr_));
  return "\"" + std::get<std::string>(repr_) + "\"";
}

}  // namespace mammoth
