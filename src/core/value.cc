#include "core/value.h"

namespace mammoth {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kGt:
      return ">";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_nil()) return "nil";
  // Each placeholder stringifies uniquely per ordinal, so optimizer CSE
  // keys built from ToString() never merge distinct parameters.
  if (is_param()) return "?" + std::to_string(param_index());
  if (is_int()) return std::to_string(std::get<int64_t>(repr_));
  if (is_real()) return std::to_string(std::get<double>(repr_));
  return "\"" + std::get<std::string>(repr_) + "\"";
}

}  // namespace mammoth
