#ifndef MAMMOTH_CORE_SELECT_H_
#define MAMMOTH_CORE_SELECT_H_

#include "common/result.h"
#include "core/bat.h"
#include "core/value.h"
#include "parallel/exec_context.h"

namespace mammoth::algebra {

/// BAT algebra select: returns the (sorted, key) OID BAT of head positions
/// of `b` whose tail value compares `op` against `v`, restricted to the
/// optional candidate list `cands` (§3: R := select(B, V)).
///
/// The kernel is a zero-degree-of-freedom tight loop per (type, op); on a
/// sorted tail with full candidates it degrades to two binary searches and
/// returns a *dense* OID BAT with no payload at all.
///
/// Numeric scans run morsel-parallel under `ctx`; results are bit-identical
/// (values and properties) for any context.
Result<BatPtr> ThetaSelect(
    const BatPtr& b, const BatPtr& cands, const Value& v, CmpOp op,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

/// Range select: lo <= x <= hi with configurable inclusiveness. `anti`
/// inverts the predicate (x outside the range). Nil bounds mean unbounded.
Result<BatPtr> RangeSelect(
    const BatPtr& b, const BatPtr& cands, const Value& lo, const Value& hi,
    bool lo_incl = true, bool hi_incl = true, bool anti = false,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_SELECT_H_
