#include "core/group.h"

#include <cstring>
#include <limits>
#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "core/dispatch.h"
#include "core/project.h"

namespace mammoth::algebra {

namespace {

/// Canonical 64-bit key for one tail slot: integers sign-extend, floats use
/// the double bit pattern, strings use their (interned, hence canonical)
/// heap offset.
template <typename T>
uint64_t CanonicalKey(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    const double d = static_cast<double>(v);
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  } else {
    return static_cast<uint64_t>(static_cast<int64_t>(v));
  }
}

/// Open-addressing map from (prev group, canonical key) to group id.
/// Grows (rehashes) at 50% load, so any number of groups is supported.
class GroupTable {
 public:
  explicit GroupTable(size_t expected) {
    nslots_ = NextPow2(expected * 2 < 16 ? 16 : expected * 2);
    slots_.assign(nslots_, kEmpty);
  }

  /// Returns the group id for the composite key, assigning the next id on
  /// first sight. `next_id` is incremented on inserts.
  uint32_t GetOrInsert(uint64_t prev, uint64_t key, uint32_t* next_id) {
    if (prevs_.size() * 2 >= nslots_) Grow();
    const uint64_t h = HashCombine(HashInt(prev), key);
    size_t slot = h & (nslots_ - 1);
    while (true) {
      const uint32_t gid = slots_[slot];
      if (gid == kEmpty) {
        slots_[slot] = *next_id;
        prevs_.push_back(prev);
        keys_.push_back(key);
        return (*next_id)++;
      }
      if (prevs_[gid] == prev && keys_[gid] == key) return gid;
      slot = (slot + 1) & (nslots_ - 1);
    }
  }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  void Grow() {
    nslots_ *= 2;
    slots_.assign(nslots_, kEmpty);
    for (uint32_t gid = 0; gid < prevs_.size(); ++gid) {
      const uint64_t h = HashCombine(HashInt(prevs_[gid]), keys_[gid]);
      size_t slot = h & (nslots_ - 1);
      while (slots_[slot] != kEmpty) slot = (slot + 1) & (nslots_ - 1);
      slots_[slot] = gid;
    }
  }

  size_t nslots_;
  std::vector<uint32_t> slots_;
  std::vector<uint64_t> prevs_;  // indexed by gid
  std::vector<uint64_t> keys_;
};

}  // namespace

Result<GroupResult> Group(const BatPtr& b, const BatPtr& prev,
                          size_t prev_ngroups) {
  if (b == nullptr) return Status::InvalidArgument("group: null input");
  if (prev != nullptr && prev->Count() != b->Count()) {
    return Status::InvalidArgument("group: prev grouping misaligned");
  }
  const size_t n = b->Count();

  GroupResult out;
  out.groups = Bat::New(PhysType::kOid);
  out.groups->Resize(n);
  out.extents = Bat::New(PhysType::kOid);
  Oid* gids = out.groups->MutableTailData<Oid>();

  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }
  BatPtr prevm = prev;
  if (prevm != nullptr && prevm->IsDenseTail()) {
    prevm = prevm->Clone();
    prevm->MaterializeDense();
  }
  const Oid* prevg = prevm == nullptr ? nullptr : prevm->TailData<Oid>();

  GroupTable table(prev_ngroups == 0 ? 64 : prev_ngroups * 4);
  uint32_t next_id = 0;
  const Oid hseq = base->hseqbase();

  auto run = [&](auto key_at) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t pg = prevg == nullptr ? 0 : prevg[i];
      const uint32_t gid = table.GetOrInsert(pg, key_at(i), &next_id);
      gids[i] = gid;
      if (gid + 1 == next_id &&
          static_cast<size_t>(gid) == out.extents->Count()) {
        out.extents->Append<Oid>(hseq + i);
      }
    }
  };

  if (base->type() == PhysType::kStr) {
    const uint64_t* offs = base->TailData<uint64_t>();
    run([&](size_t i) { return offs[i]; });
  } else {
    DispatchNumeric(base->type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const T* v = base->TailData<T>();
      run([&](size_t i) { return CanonicalKey(v[i]); });
    });
  }

  out.ngroups = next_id;
  out.groups->mutable_props().sorted = false;
  out.extents->mutable_props().sorted = true;
  out.extents->mutable_props().key = true;
  return out;
}

namespace {

Status ValidateAggr(const BatPtr& values, const BatPtr& groups,
                    size_t ngroups) {
  if (values == nullptr) return Status::InvalidArgument("aggr: null values");
  if (groups == nullptr) {
    if (ngroups != 1) {
      return Status::InvalidArgument("aggr: global aggregate needs ngroups=1");
    }
    return Status::OK();
  }
  if (groups->type() != PhysType::kOid) {
    return Status::TypeMismatch("aggr: groups must be bat[:oid]");
  }
  if (groups->Count() != values->Count()) {
    return Status::InvalidArgument("aggr: groups misaligned with values");
  }
  return Status::OK();
}

const Oid* GroupIds(const BatPtr& groups, BatPtr* holder) {
  if (groups == nullptr) return nullptr;
  if (groups->IsDenseTail()) {
    *holder = groups->Clone();
    (*holder)->MaterializeDense();
    return (*holder)->TailData<Oid>();
  }
  return groups->TailData<Oid>();
}

}  // namespace

Result<BatPtr> AggrSum(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups) {
  MAMMOTH_RETURN_IF_ERROR(ValidateAggr(values, groups, ngroups));
  if (values->type() == PhysType::kStr) {
    return Status::TypeMismatch("sum over strings");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  const size_t n = values->Count();

  BatPtr vm = values;
  if (vm->IsDenseTail()) {
    vm = vm->Clone();
    vm->MaterializeDense();
  }
  return DispatchNumeric(vm->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    const T* v = vm->TailData<T>();
    if constexpr (std::is_floating_point_v<T>) {
      std::vector<double> acc(ngroups, 0.0);
      for (size_t i = 0; i < n; ++i) acc[gids ? gids[i] : 0] += v[i];
      BatPtr r = Bat::New(PhysType::kDouble);
      r->AppendRaw(acc.data(), ngroups);
      return r;
    } else {
      std::vector<int64_t> acc(ngroups, 0);
      for (size_t i = 0; i < n; ++i) {
        acc[gids ? gids[i] : 0] += static_cast<int64_t>(v[i]);
      }
      BatPtr r = Bat::New(PhysType::kInt64);
      r->AppendRaw(acc.data(), ngroups);
      return r;
    }
  });
}

Result<BatPtr> AggrCount(const BatPtr& groups, size_t ngroups, size_t nrows) {
  if (groups == nullptr) {
    BatPtr r = Bat::New(PhysType::kInt64);
    r->Append<int64_t>(static_cast<int64_t>(nrows));
    return r;
  }
  if (groups->type() != PhysType::kOid) {
    return Status::TypeMismatch("count: groups must be bat[:oid]");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  std::vector<int64_t> acc(ngroups, 0);
  const size_t n = groups->Count();
  for (size_t i = 0; i < n; ++i) acc[gids[i]] += 1;
  BatPtr r = Bat::New(PhysType::kInt64);
  r->AppendRaw(acc.data(), ngroups);
  return r;
}

namespace {

template <bool kMin>
Result<BatPtr> AggrMinMax(const BatPtr& values, const BatPtr& groups,
                          size_t ngroups) {
  MAMMOTH_RETURN_IF_ERROR(ValidateAggr(values, groups, ngroups));
  if (values->type() == PhysType::kStr) {
    return Status::Unimplemented("min/max over strings");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  const size_t n = values->Count();
  BatPtr vm = values;
  if (vm->IsDenseTail()) {
    vm = vm->Clone();
    vm->MaterializeDense();
  }
  return DispatchNumeric(vm->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    const T* v = vm->TailData<T>();
    std::vector<T> acc(ngroups,
                       kMin ? std::numeric_limits<T>::max()
                            : std::numeric_limits<T>::lowest());
    for (size_t i = 0; i < n; ++i) {
      const Oid g = gids ? gids[i] : 0;
      if constexpr (kMin) {
        if (v[i] < acc[g]) acc[g] = v[i];
      } else {
        if (v[i] > acc[g]) acc[g] = v[i];
      }
    }
    BatPtr r = Bat::New(vm->type());
    r->AppendRaw(acc.data(), ngroups);
    return r;
  });
}

}  // namespace

Result<BatPtr> AggrMin(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups) {
  return AggrMinMax<true>(values, groups, ngroups);
}

Result<BatPtr> AggrMax(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups) {
  return AggrMinMax<false>(values, groups, ngroups);
}

Result<BatPtr> AggrAvg(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups) {
  MAMMOTH_RETURN_IF_ERROR(ValidateAggr(values, groups, ngroups));
  if (values->type() == PhysType::kStr) {
    return Status::TypeMismatch("avg over strings");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  const size_t n = values->Count();
  BatPtr vm = values;
  if (vm->IsDenseTail()) {
    vm = vm->Clone();
    vm->MaterializeDense();
  }
  std::vector<double> sum(ngroups, 0.0);
  std::vector<int64_t> cnt(ngroups, 0);
  DispatchNumeric(vm->type(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    const T* v = vm->TailData<T>();
    for (size_t i = 0; i < n; ++i) {
      const Oid g = gids ? gids[i] : 0;
      sum[g] += static_cast<double>(v[i]);
      cnt[g] += 1;
    }
  });
  BatPtr r = Bat::New(PhysType::kDouble);
  r->Reserve(ngroups);
  for (size_t g = 0; g < ngroups; ++g) {
    r->Append<double>(cnt[g] == 0 ? 0.0 : sum[g] / static_cast<double>(cnt[g]));
  }
  return r;
}

Result<BatPtr> Distinct(const BatPtr& b) {
  MAMMOTH_ASSIGN_OR_RETURN(GroupResult g, Group(b));
  return Project(g.extents, b);
}

}  // namespace mammoth::algebra
