#include "core/group.h"

#include <cstring>
#include <limits>
#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "core/dispatch.h"
#include "core/project.h"

namespace mammoth::algebra {

namespace {

using parallel::ExecContext;
using parallel::TaskPool;

/// Kernels switch to per-worker partials only past this row count (below
/// it the scan is cheaper than waking the pool)...
constexpr size_t kParallelGrain = TaskPool::kDefaultGrain;
/// ...and only while the per-worker accumulator arrays stay reasonably
/// sized (nworkers copies of ngroups slots).
constexpr size_t kMaxPartialGroups = size_t{1} << 20;

bool UseParallel(const ExecContext& ctx, size_t n, size_t ngroups) {
  return ctx.threads() > 1 && n > 2 * kParallelGrain &&
         ngroups <= kMaxPartialGroups;
}

/// Canonical 64-bit key for one tail slot: integers sign-extend, floats use
/// the double bit pattern, strings use their (interned, hence canonical)
/// heap offset.
template <typename T>
uint64_t CanonicalKey(T v) {
  if constexpr (std::is_floating_point_v<T>) {
    const double d = static_cast<double>(v);
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  } else {
    return static_cast<uint64_t>(static_cast<int64_t>(v));
  }
}

/// Open-addressing map from (prev group, canonical key) to group id.
/// Grows (rehashes) at 50% load, so any number of groups is supported.
class GroupTable {
 public:
  explicit GroupTable(size_t expected) {
    nslots_ = NextPow2(expected * 2 < 16 ? 16 : expected * 2);
    slots_.assign(nslots_, kEmpty);
  }

  /// Returns the group id for the composite key, assigning the next id on
  /// first sight. `next_id` is incremented on inserts.
  uint32_t GetOrInsert(uint64_t prev, uint64_t key, uint32_t* next_id) {
    if (prevs_.size() * 2 >= nslots_) Grow();
    const uint64_t h = HashCombine(HashInt(prev), key);
    size_t slot = h & (nslots_ - 1);
    while (true) {
      const uint32_t gid = slots_[slot];
      if (gid == kEmpty) {
        slots_[slot] = *next_id;
        prevs_.push_back(prev);
        keys_.push_back(key);
        return (*next_id)++;
      }
      if (prevs_[gid] == prev && keys_[gid] == key) return gid;
      slot = (slot + 1) & (nslots_ - 1);
    }
  }

  /// Composite key of a previously assigned group id (for the renumber
  /// pass of the parallel grouping).
  uint64_t PrevOf(uint32_t gid) const { return prevs_[gid]; }
  uint64_t KeyOf(uint32_t gid) const { return keys_[gid]; }

 private:
  static constexpr uint32_t kEmpty = 0xffffffffu;

  void Grow() {
    nslots_ *= 2;
    slots_.assign(nslots_, kEmpty);
    for (uint32_t gid = 0; gid < prevs_.size(); ++gid) {
      const uint64_t h = HashCombine(HashInt(prevs_[gid]), keys_[gid]);
      size_t slot = h & (nslots_ - 1);
      while (slots_[slot] != kEmpty) slot = (slot + 1) & (nslots_ - 1);
      slots_[slot] = gid;
    }
  }

  size_t nslots_;
  std::vector<uint32_t> slots_;
  std::vector<uint64_t> prevs_;  // indexed by gid
  std::vector<uint64_t> keys_;
};

}  // namespace

Result<GroupResult> Group(const BatPtr& b, const BatPtr& prev,
                          size_t prev_ngroups,
                          const parallel::ExecContext& ctx) {
  if (b == nullptr) return Status::InvalidArgument("group: null input");
  if (prev != nullptr && prev->Count() != b->Count()) {
    return Status::InvalidArgument("group: prev grouping misaligned");
  }
  const size_t n = b->Count();

  GroupResult out;
  out.groups = Bat::New(PhysType::kOid);
  out.groups->Resize(n);
  out.extents = Bat::New(PhysType::kOid);
  Oid* gids = out.groups->MutableTailData<Oid>();

  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }
  BatPtr prevm = prev;
  if (prevm != nullptr && prevm->IsDenseTail()) {
    prevm = prevm->Clone();
    prevm->MaterializeDense();
  }
  const Oid* prevg = prevm == nullptr ? nullptr : prevm->TailData<Oid>();
  const Oid hseq = base->hseqbase();

  uint32_t next_id = 0;

  auto run_serial = [&](auto key_at) {
    GroupTable table(prev_ngroups == 0 ? 64 : prev_ngroups * 4);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t pg = prevg == nullptr ? 0 : prevg[i];
      const uint32_t gid = table.GetOrInsert(pg, key_at(i), &next_id);
      gids[i] = gid;
      if (gid + 1 == next_id &&
          static_cast<size_t>(gid) == out.extents->Count()) {
        out.extents->Append<Oid>(hseq + i);
      }
    }
  };

  /// Parallel grouping in two phases. Phase 1 (parallel): every worker
  /// hashes its morsels into a private table, storing *local* group ids in
  /// the output array. Phase 2 (serial): walk the rows in order, mapping
  /// each (worker, local id) pair to a global id assigned at its first
  /// appearance — exactly the id order the serial kernel produces. Phase 2
  /// does one array lookup per row; the hash work stays in phase 1.
  auto run_parallel = [&](auto key_at) {
    const int nworkers = ctx.threads();
    const size_t grain = kParallelGrain;
    const size_t nmorsels = (n + grain - 1) / grain;
    std::vector<GroupTable> local;
    local.reserve(static_cast<size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) {
      local.emplace_back(prev_ngroups == 0 ? 64 : prev_ngroups * 4);
    }
    std::vector<uint32_t> local_next(static_cast<size_t>(nworkers), 0);
    std::vector<int> morsel_worker(nmorsels, 0);

    Status s = ctx.ParallelFor(
        n, grain, [&](size_t begin, size_t end, int worker) {
          morsel_worker[begin / grain] = worker;
          GroupTable& table = local[static_cast<size_t>(worker)];
          uint32_t* next = &local_next[static_cast<size_t>(worker)];
          for (size_t i = begin; i < end; ++i) {
            const uint64_t pg = prevg == nullptr ? 0 : prevg[i];
            gids[i] = table.GetOrInsert(pg, key_at(i), next);
          }
          return Status::OK();
        });
    MAMMOTH_CHECK(s.ok(), "group phase 1 cannot fail");

    constexpr uint32_t kUnset = 0xffffffffu;
    std::vector<std::vector<uint32_t>> remap(static_cast<size_t>(nworkers));
    for (int w = 0; w < nworkers; ++w) {
      remap[static_cast<size_t>(w)].assign(
          local_next[static_cast<size_t>(w)], kUnset);
    }
    GroupTable global(prev_ngroups == 0 ? 64 : prev_ngroups * 4);
    for (size_t i = 0; i < n; ++i) {
      const size_t w = static_cast<size_t>(morsel_worker[i / grain]);
      const uint32_t lg = static_cast<uint32_t>(gids[i]);
      uint32_t g = remap[w][lg];
      if (g == kUnset) {
        g = global.GetOrInsert(local[w].PrevOf(lg), local[w].KeyOf(lg),
                               &next_id);
        remap[w][lg] = g;
        if (g + 1 == next_id &&
            static_cast<size_t>(g) == out.extents->Count()) {
          out.extents->Append<Oid>(hseq + i);
        }
      }
      gids[i] = g;
    }
  };

  auto run = [&](auto key_at) {
    if (UseParallel(ctx, n, kMaxPartialGroups)) {
      run_parallel(key_at);
    } else {
      run_serial(key_at);
    }
  };

  if (base->type() == PhysType::kStr) {
    const uint64_t* offs = base->TailData<uint64_t>();
    run([&](size_t i) { return offs[i]; });
  } else {
    DispatchNumeric(base->type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const T* v = base->TailData<T>();
      run([&](size_t i) { return CanonicalKey(v[i]); });
    });
  }

  out.ngroups = next_id;
  out.groups->mutable_props().sorted = false;
  out.extents->mutable_props().sorted = true;
  out.extents->mutable_props().key = true;
  return out;
}

namespace {

Status ValidateAggr(const BatPtr& values, const BatPtr& groups,
                    size_t ngroups) {
  if (values == nullptr) return Status::InvalidArgument("aggr: null values");
  if (groups == nullptr) {
    if (ngroups != 1) {
      return Status::InvalidArgument("aggr: global aggregate needs ngroups=1");
    }
    return Status::OK();
  }
  if (groups->type() != PhysType::kOid) {
    return Status::TypeMismatch("aggr: groups must be bat[:oid]");
  }
  if (groups->Count() != values->Count()) {
    return Status::InvalidArgument("aggr: groups misaligned with values");
  }
  return Status::OK();
}

const Oid* GroupIds(const BatPtr& groups, BatPtr* holder) {
  if (groups == nullptr) return nullptr;
  if (groups->IsDenseTail()) {
    *holder = groups->Clone();
    (*holder)->MaterializeDense();
    return (*holder)->TailData<Oid>();
  }
  return groups->TailData<Oid>();
}

/// Folds rows [0, n) into `acc` (size ngroups) with `fold(acc_slot, i)`,
/// using per-worker partial accumulators merged in worker order by
/// `merge(acc_slot, partial_slot)`. Requires fold/merge to be exactly
/// associative and commutative (integer adds, min, max) so the merged
/// result is bit-identical to the serial fold.
template <typename A, typename FoldFn, typename MergeFn>
void FoldGroups(const ExecContext& ctx, size_t n, const Oid* gids,
                std::vector<A>* acc, const FoldFn& fold,
                const MergeFn& merge) {
  const size_t ngroups = acc->size();
  if (ngroups == 0 || !UseParallel(ctx, n, ngroups)) {
    A* a = acc->data();
    for (size_t i = 0; i < n; ++i) fold(&a[gids ? gids[i] : 0], i);
    return;
  }
  const int nworkers = ctx.threads();
  const A init = (*acc)[0];  // caller-provided identity fills the array
  std::vector<std::vector<A>> partial(static_cast<size_t>(nworkers));
  Status s = ctx.ParallelFor(
      n, kParallelGrain, [&](size_t begin, size_t end, int worker) {
        std::vector<A>& p = partial[static_cast<size_t>(worker)];
        if (p.empty()) p.assign(ngroups, init);
        A* a = p.data();
        for (size_t i = begin; i < end; ++i) fold(&a[gids ? gids[i] : 0], i);
        return Status::OK();
      });
  MAMMOTH_CHECK(s.ok(), "aggregate fold cannot fail");
  for (const std::vector<A>& p : partial) {
    if (p.empty()) continue;
    for (size_t g = 0; g < ngroups; ++g) merge(&(*acc)[g], p[g]);
  }
}

}  // namespace

Result<BatPtr> AggrSum(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups, const parallel::ExecContext& ctx) {
  MAMMOTH_RETURN_IF_ERROR(ValidateAggr(values, groups, ngroups));
  if (values->type() == PhysType::kStr) {
    return Status::TypeMismatch("sum over strings");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  const size_t n = values->Count();

  BatPtr vm = values;
  if (vm->IsDenseTail()) {
    vm = vm->Clone();
    vm->MaterializeDense();
  }
  return DispatchNumeric(vm->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    const T* v = vm->TailData<T>();
    if constexpr (std::is_floating_point_v<T>) {
      // Serial on purpose: float addition is not associative, and the
      // kernels guarantee results independent of the thread count.
      std::vector<double> acc(ngroups, 0.0);
      for (size_t i = 0; i < n; ++i) acc[gids ? gids[i] : 0] += v[i];
      BatPtr r = Bat::New(PhysType::kDouble);
      r->AppendRaw(acc.data(), ngroups);
      return r;
    } else {
      std::vector<int64_t> acc(ngroups, 0);
      FoldGroups<int64_t>(
          ctx, n, gids, &acc,
          [&](int64_t* a, size_t i) { *a += static_cast<int64_t>(v[i]); },
          [](int64_t* a, int64_t p) { *a += p; });
      BatPtr r = Bat::New(PhysType::kInt64);
      r->AppendRaw(acc.data(), ngroups);
      return r;
    }
  });
}

Result<BatPtr> AggrCount(const BatPtr& groups, size_t ngroups, size_t nrows,
                         const parallel::ExecContext& ctx) {
  if (groups == nullptr) {
    BatPtr r = Bat::New(PhysType::kInt64);
    r->Append<int64_t>(static_cast<int64_t>(nrows));
    return r;
  }
  if (groups->type() != PhysType::kOid) {
    return Status::TypeMismatch("count: groups must be bat[:oid]");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  std::vector<int64_t> acc(ngroups, 0);
  const size_t n = groups->Count();
  FoldGroups<int64_t>(
      ctx, n, gids, &acc, [](int64_t* a, size_t) { *a += 1; },
      [](int64_t* a, int64_t p) { *a += p; });
  BatPtr r = Bat::New(PhysType::kInt64);
  r->AppendRaw(acc.data(), ngroups);
  return r;
}

namespace {

template <bool kMin>
Result<BatPtr> AggrMinMax(const BatPtr& values, const BatPtr& groups,
                          size_t ngroups, const ExecContext& ctx) {
  MAMMOTH_RETURN_IF_ERROR(ValidateAggr(values, groups, ngroups));
  if (values->type() == PhysType::kStr) {
    return Status::Unimplemented("min/max over strings");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  const size_t n = values->Count();
  BatPtr vm = values;
  if (vm->IsDenseTail()) {
    vm = vm->Clone();
    vm->MaterializeDense();
  }
  return DispatchNumeric(vm->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    const T* v = vm->TailData<T>();
    std::vector<T> acc(ngroups,
                       kMin ? std::numeric_limits<T>::max()
                            : std::numeric_limits<T>::lowest());
    FoldGroups<T>(
        ctx, n, gids, &acc,
        [&](T* a, size_t i) {
          if constexpr (kMin) {
            if (v[i] < *a) *a = v[i];
          } else {
            if (v[i] > *a) *a = v[i];
          }
        },
        [](T* a, T p) {
          if constexpr (kMin) {
            if (p < *a) *a = p;
          } else {
            if (p > *a) *a = p;
          }
        });
    BatPtr r = Bat::New(vm->type());
    r->AppendRaw(acc.data(), ngroups);
    return r;
  });
}

}  // namespace

Result<BatPtr> AggrMin(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups, const parallel::ExecContext& ctx) {
  return AggrMinMax<true>(values, groups, ngroups, ctx);
}

Result<BatPtr> AggrMax(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups, const parallel::ExecContext& ctx) {
  return AggrMinMax<false>(values, groups, ngroups, ctx);
}

Result<BatPtr> AggrAvg(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups) {
  MAMMOTH_RETURN_IF_ERROR(ValidateAggr(values, groups, ngroups));
  if (values->type() == PhysType::kStr) {
    return Status::TypeMismatch("avg over strings");
  }
  BatPtr holder;
  const Oid* gids = GroupIds(groups, &holder);
  const size_t n = values->Count();
  BatPtr vm = values;
  if (vm->IsDenseTail()) {
    vm = vm->Clone();
    vm->MaterializeDense();
  }
  std::vector<double> sum(ngroups, 0.0);
  std::vector<int64_t> cnt(ngroups, 0);
  DispatchNumeric(vm->type(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    const T* v = vm->TailData<T>();
    for (size_t i = 0; i < n; ++i) {
      const Oid g = gids ? gids[i] : 0;
      sum[g] += static_cast<double>(v[i]);
      cnt[g] += 1;
    }
  });
  BatPtr r = Bat::New(PhysType::kDouble);
  r->Reserve(ngroups);
  for (size_t g = 0; g < ngroups; ++g) {
    r->Append<double>(cnt[g] == 0 ? 0.0 : sum[g] / static_cast<double>(cnt[g]));
  }
  return r;
}

Result<BatPtr> Distinct(const BatPtr& b, const parallel::ExecContext& ctx) {
  MAMMOTH_ASSIGN_OR_RETURN(GroupResult g, Group(b, nullptr, 0, ctx));
  return Project(g.extents, b, ctx);
}

}  // namespace mammoth::algebra
