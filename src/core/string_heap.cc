#include "core/string_heap.h"

#include <cstring>

#include "common/logging.h"

namespace mammoth {

uint64_t StringHeap::Put(std::string_view s) {
  auto it = intern_.find(std::string(s));
  if (it != intern_.end()) return it->second;
  const uint64_t offset = bytes_.size();
  bytes_.insert(bytes_.end(), s.begin(), s.end());
  bytes_.push_back('\0');
  intern_.emplace(std::string(s), offset);
  return offset;
}

std::string_view StringHeap::Get(uint64_t offset) const {
  MAMMOTH_DCHECK(offset < bytes_.size(), "string heap offset out of range");
  const char* p = bytes_.data() + offset;
  return std::string_view(p, std::strlen(p));
}

void StringHeap::Restore(const char* bytes, size_t n) {
  bytes_.assign(bytes, bytes + n);
  intern_.clear();
  size_t offset = 0;
  while (offset < n) {
    const char* s = bytes_.data() + offset;
    const size_t len = std::strlen(s);
    intern_.emplace(std::string(s, len), offset);
    offset += len + 1;
  }
}

bool StringHeap::Find(std::string_view s, uint64_t* offset) const {
  auto it = intern_.find(std::string(s));
  if (it == intern_.end()) return false;
  *offset = it->second;
  return true;
}

}  // namespace mammoth
