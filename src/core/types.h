#ifndef MAMMOTH_CORE_TYPES_H_
#define MAMMOTH_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mammoth {

/// Object identifier: the (virtual) dense surrogate forming the head of
/// every BAT (§3). OIDs are array positions offset by the BAT's hseqbase.
using Oid = uint64_t;

/// Sentinel for "no oid" (MonetDB's oid_nil).
inline constexpr Oid kOidNil = std::numeric_limits<Oid>::max();

/// Physical tail types stored in BATs. Strings are stored as fixed-width
/// offsets into a variable-width heap, exactly as the paper describes
/// ("variable-width types are split into two arrays, one with offsets, and
/// the other with all concatenated data", §3).
enum class PhysType : uint8_t {
  kBool = 0,
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kOid,
  kFloat,
  kDouble,
  kStr,
};

/// Width in bytes of one tail slot of the given type.
constexpr size_t TypeWidth(PhysType t) {
  switch (t) {
    case PhysType::kBool:
    case PhysType::kInt8:
      return 1;
    case PhysType::kInt16:
      return 2;
    case PhysType::kInt32:
    case PhysType::kFloat:
      return 4;
    case PhysType::kInt64:
    case PhysType::kOid:
    case PhysType::kDouble:
    case PhysType::kStr:  // heap offset
      return 8;
  }
  return 0;
}

/// Short lowercase type name matching MonetDB conventions (:int, :lng, ...).
const char* TypeName(PhysType t);

constexpr bool IsNumeric(PhysType t) {
  return t != PhysType::kStr;
}

constexpr bool IsFloating(PhysType t) {
  return t == PhysType::kFloat || t == PhysType::kDouble;
}

/// Maps C++ value types to their PhysType tag (primary template undefined on
/// purpose: using an unsupported type is a compile error).
template <typename T>
struct TypeTraits;

template <>
struct TypeTraits<bool> {
  static constexpr PhysType kType = PhysType::kBool;
};
template <>
struct TypeTraits<int8_t> {
  static constexpr PhysType kType = PhysType::kInt8;
};
template <>
struct TypeTraits<int16_t> {
  static constexpr PhysType kType = PhysType::kInt16;
};
template <>
struct TypeTraits<int32_t> {
  static constexpr PhysType kType = PhysType::kInt32;
};
template <>
struct TypeTraits<int64_t> {
  static constexpr PhysType kType = PhysType::kInt64;
};
template <>
struct TypeTraits<uint64_t> {
  static constexpr PhysType kType = PhysType::kOid;
};
template <>
struct TypeTraits<float> {
  static constexpr PhysType kType = PhysType::kFloat;
};
template <>
struct TypeTraits<double> {
  static constexpr PhysType kType = PhysType::kDouble;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_TYPES_H_
