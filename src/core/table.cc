#include "core/table.h"

#include <algorithm>

#include "core/dispatch.h"

namespace mammoth {

Table::Table(std::string name, std::vector<ColumnDef> schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  mains_.reserve(schema_.size());
  compressed_.resize(schema_.size());
  str_dicts_.resize(schema_.size());
  inserts_.reserve(schema_.size());
  for (const ColumnDef& def : schema_) {
    mains_.push_back(NewColumnBat(def));
    // Insert deltas of string columns share the main column's heap so the
    // merge step is a plain offset append.
    if (def.type == PhysType::kStr) {
      inserts_.push_back(Bat::NewString(mains_.back()->heap()));
    } else {
      inserts_.push_back(Bat::New(def.type));
    }
  }
  deleted_ = Bat::New(PhysType::kOid);
  deleted_->mutable_props().sorted = true;
  deleted_->mutable_props().key = true;
  deleted_stamps_ = std::make_shared<const std::vector<uint64_t>>();
}

BatPtr Table::NewColumnBat(const ColumnDef& def) {
  return def.type == PhysType::kStr ? Bat::NewString(nullptr)
                                    : Bat::New(def.type);
}

Result<TablePtr> Table::Create(std::string name,
                               std::vector<ColumnDef> schema) {
  if (schema.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    for (size_t j = i + 1; j < schema.size(); ++j) {
      if (schema[i].name == schema[j].name) {
        return Status::AlreadyExists("duplicate column " + schema[i].name);
      }
    }
  }
  return TablePtr(new Table(std::move(name), std::move(schema)));
}

Result<TablePtr> Table::FromColumns(std::string name,
                                    std::vector<ColumnDef> schema,
                                    std::vector<BatPtr> columns) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t,
                           Create(std::move(name), std::move(schema)));
  if (columns.size() != t->schema_.size()) {
    return Status::InvalidArgument("FromColumns: column count mismatch");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr || columns[i]->type() != t->schema_[i].type) {
      return Status::TypeMismatch("FromColumns: column " +
                                  t->schema_[i].name + " type mismatch");
    }
    if (columns[i]->Count() != columns[0]->Count()) {
      return Status::InvalidArgument("FromColumns: column lengths differ");
    }
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    t->mains_[i] = std::move(columns[i]);
    // String deltas must share the adopted heap.
    if (t->schema_[i].type == PhysType::kStr) {
      t->inserts_[i] = Bat::NewString(t->mains_[i]->heap());
    }
  }
  return t;
}

Result<size_t> Table::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == column_name) return i;
  }
  return Status::NotFound("no column named " + std::string(column_name));
}

size_t Table::PhysicalRowCount() const {
  return MainRowCount() + inserts_[0]->Count();
}

size_t Table::VisibleRowCount() const {
  return PhysicalRowCount() - deleted_->Count();
}

Status Table::Insert(const std::vector<Value>& row, uint64_t stamp) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const bool is_str_col = schema_[i].type == PhysType::kStr;
    if (is_str_col != row[i].is_str()) {
      return Status::TypeMismatch("column " + schema_[i].name +
                                  ": value kind mismatch");
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Bat& delta = *inserts_[i];
    if (schema_[i].type == PhysType::kStr) {
      delta.AppendString(row[i].AsStr());
    } else {
      DispatchNumeric(schema_[i].type, [&](auto tag) {
        using T = typename decltype(tag)::type;
        delta.tail().Append<T>(row[i].As<T>());
      });
    }
  }
  insert_stamps_.push_back(stamp);
  if (stamp == txn::kVisibleToAll) ++all_visible_version_;
  ++version_;
  return Status::OK();
}

Status Table::Delete(const BatPtr& oids, uint64_t stamp,
                     const txn::Snapshot* snap) {
  if (oids == nullptr || oids->type() != PhysType::kOid) {
    return Status::InvalidArgument("delete: need bat[:oid]");
  }
  const size_t nrows = PhysicalRowCount();
  std::vector<Oid> add;
  add.reserve(oids->Count());
  for (size_t i = 0; i < oids->Count(); ++i) {
    const Oid o = oids->OidAt(i);
    if (o >= nrows) return Status::OutOfRange("delete: oid beyond table");
    add.push_back(o);
  }
  std::sort(add.begin(), add.end());
  add.erase(std::unique(add.begin(), add.end()), add.end());
  const size_t ndead = deleted_->Count();
  const std::vector<uint64_t>& dstamps = *deleted_stamps_;
  if (snap != nullptr) {
    // First-writer-wins: a target already marked by a delete this snapshot
    // cannot see lost the race to a transaction that committed after our
    // snapshot (or still has the mark pending). Fail before mutating.
    size_t d = 0;
    for (const Oid o : add) {
      while (d < ndead && deleted_->OidAt(d) < o) ++d;
      if (d < ndead && deleted_->OidAt(d) == o && !snap->Sees(dstamps[d])) {
        return Status::Conflict("row " + std::to_string(o) + " of " + name_ +
                                " was modified by a concurrent transaction");
      }
    }
  }
  // Merge-rebuild both lists wholesale (Mark() holds the old pointers).
  std::vector<Oid> moids;
  auto mstamps = std::make_shared<std::vector<uint64_t>>();
  moids.reserve(ndead + add.size());
  mstamps->reserve(ndead + add.size());
  size_t i = 0, j = 0;
  while (i < ndead || j < add.size()) {
    if (j >= add.size() ||
        (i < ndead && deleted_->OidAt(i) <= add[j])) {
      // Existing mark wins a tie: the first deleter's stamp is the one
      // that committed (or is still pending) on this row.
      if (j < add.size() && deleted_->OidAt(i) == add[j]) ++j;
      moids.push_back(deleted_->OidAt(i));
      mstamps->push_back(dstamps[i]);
      ++i;
    } else {
      moids.push_back(add[j]);
      mstamps->push_back(stamp);
      ++j;
    }
  }
  deleted_ = Bat::New(PhysType::kOid);
  deleted_->AppendRaw(moids.data(), moids.size());
  deleted_->mutable_props().sorted = true;
  deleted_->mutable_props().key = true;
  deleted_stamps_ = std::move(mstamps);
  if (stamp == txn::kVisibleToAll) ++all_visible_version_;
  ++version_;
  return Status::OK();
}

Result<BatPtr> Table::ScanColumn(size_t idx) const {
  if (idx >= schema_.size()) return Status::OutOfRange("no such column");
  BatPtr main = mains_[idx];
  if (compressed_[idx] != nullptr) {
    // Transparent read path: the shared decode cache makes repeated scans
    // pay for at most one decompression per compressed image.
    MAMMOTH_ASSIGN_OR_RETURN(main, compressed_[idx]->DecodedBat());
  }
  const BatPtr& ins = inserts_[idx];
  if (ins->Count() == 0) return main;
  // Materialize main ++ inserts. String deltas share the main heap, so the
  // offsets concatenate directly.
  BatPtr merged = main->Clone();
  merged->AppendRaw(ins->tail().raw_data(), ins->Count());
  merged->mutable_props() = BatProperties{};
  return merged;
}

Result<BatPtr> Table::ScanColumn(std::string_view column_name) const {
  MAMMOTH_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column_name));
  return ScanColumn(idx);
}

BatPtr Table::LiveCandidates() const {
  const size_t nrows = PhysicalRowCount();
  if (deleted_->Count() == 0) return Bat::NewDense(0, nrows);
  BatPtr live = Bat::New(PhysType::kOid);
  live->Reserve(nrows - deleted_->Count());
  const Oid* dead = deleted_->TailData<Oid>();
  const size_t ndead = deleted_->Count();
  size_t d = 0;
  for (Oid o = 0; o < nrows; ++o) {
    if (d < ndead && dead[d] == o) {
      ++d;
      continue;
    }
    live->Append<Oid>(o);
  }
  live->mutable_props().sorted = true;
  live->mutable_props().key = true;
  return live;
}

Status Table::MergeDeltas() {
  const BatPtr live = LiveCandidates();
  const bool has_deletes = deleted_->Count() > 0;
  const bool has_inserts = inserts_[0]->Count() > 0;
  for (size_t i = 0; i < schema_.size(); ++i) {
    // A compressed column with no pending deltas is already its merged
    // image: skip the decode/re-encode churn (checkpoints call MergeDeltas
    // on every snapshot).
    if ((compressed_[i] != nullptr || str_dicts_[i] != nullptr) &&
        !has_deletes && !has_inserts) {
      continue;
    }
    MAMMOTH_ASSIGN_OR_RETURN(BatPtr merged, ScanColumn(i));
    if (has_deletes) {
      // Compact: keep only live positions.
      BatPtr compacted;
      if (schema_[i].type == PhysType::kStr) {
        compacted = Bat::NewString(merged->heap());
        compacted->Reserve(live->Count());
        for (size_t j = 0; j < live->Count(); ++j) {
          compacted->tail().Append<uint64_t>(
              merged->TailData<uint64_t>()[live->OidAt(j)]);
        }
      } else {
        compacted = Bat::New(schema_[i].type);
        compacted->Reserve(live->Count());
        DispatchNumeric(schema_[i].type, [&](auto tag) {
          using T = typename decltype(tag)::type;
          const T* src = merged->TailData<T>();
          for (size_t j = 0; j < live->Count(); ++j) {
            compacted->tail().Append<T>(src[live->OidAt(j)]);
          }
        });
      }
      mains_[i] = compacted;
    } else if (merged.get() != mains_[i].get()) {
      mains_[i] = merged;
    }
    compressed_[i] = nullptr;
    if (compress_policy_ && Compressible(schema_[i].type)) {
      // Re-encode the merged image; on failure (nothing to gain, or an
      // empty column) the plain BAT simply stays.
      Result<compress::CompressedBat> comp =
          compress::CompressedBat::CompressBest(mains_[i]);
      if (comp.ok()) {
        compressed_[i] =
            std::make_shared<const compress::CompressedBat>(*std::move(comp));
        mains_[i] = NewColumnBat(schema_[i]);
      }
    }
    str_dicts_[i] = nullptr;
    if (compress_policy_ && schema_[i].type == PhysType::kStr) {
      // String columns keep the plain BAT (offset identity anchors deltas
      // and joins); the dictionary rides alongside as the execution and
      // persistence image. High cardinality simply leaves it off.
      Result<compress::StrDict> dict = compress::StrDict::Encode(mains_[i]);
      if (dict.ok()) {
        str_dicts_[i] =
            std::make_shared<const compress::StrDict>(*std::move(dict));
      }
    }
    // Fresh empty delta (string deltas re-attach to the main heap).
    if (schema_[i].type == PhysType::kStr) {
      inserts_[i] = Bat::NewString(mains_[i]->heap());
    } else {
      inserts_[i] = Bat::New(schema_[i].type);
    }
  }
  deleted_ = Bat::New(PhysType::kOid);
  deleted_->mutable_props().sorted = true;
  deleted_->mutable_props().key = true;
  insert_stamps_.clear();
  deleted_stamps_ = std::make_shared<const std::vector<uint64_t>>();
  // The merge runs at quiescence (no open transactions), so the compacted
  // image is all-visible and the per-commit history can be dropped.
  commit_history_.clear();
  ++all_visible_version_;
  ++version_;
  return Status::OK();
}

Table::DeltaMark Table::Mark() const {
  return DeltaMark{inserts_[0]->Count(), deleted_, deleted_stamps_, version_};
}

void Table::Rollback(const DeltaMark& mark) {
  for (const BatPtr& delta : inserts_) {
    // Shrink the delta back; interned strings appended since the mark
    // stay in the heap (harmless garbage) but their offsets vanish.
    delta->Resize(mark.insert_rows);
  }
  insert_stamps_.resize(mark.insert_rows);
  deleted_ = mark.deleted;
  deleted_stamps_ = mark.deleted_stamps;
  // Restoring the version is safe: the table content is bit-identical to
  // what that version number described, so recycler entries keyed on it
  // are valid again. The single-owner rule means nothing else touched the
  // deltas between the mark and this rollback.
  version_ = mark.version;
  // Conservative: if the reverted statement had all-visible stamps the
  // epoch moved forward at mutation time and must move again now.
  ++all_visible_version_;
}

TablePtr Table::Snapshot() const {
  TablePtr snap(new Table(name_, schema_));
  snap->mains_ = mains_;            // shared, immutable until MergeDeltas
  snap->compressed_ = compressed_;  // immutable byte streams: share
  snap->str_dicts_ = str_dicts_;    // immutable dictionaries: share
  snap->compress_policy_ = compress_policy_;
  for (size_t i = 0; i < inserts_.size(); ++i) {
    snap->inserts_[i] = inserts_[i]->Clone();
  }
  snap->insert_stamps_ = insert_stamps_;
  snap->deleted_ = deleted_->Clone();
  snap->deleted_stamps_ = deleted_stamps_;  // immutable vector: share
  snap->commit_history_ = commit_history_;
  snap->all_visible_version_ = all_visible_version_;
  snap->version_ = version_;
  return snap;
}

Status Table::SetCompression(bool on) {
  compress_policy_ = on;
  if (on) {
    // Fold pending deltas into the mains and re-encode under the new
    // policy in one step (MergeDeltas does both), so the compressed
    // image covers every visible row — not just the merged prefix.
    return MergeDeltas();
  }
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (compressed_[i] != nullptr) {
      MAMMOTH_ASSIGN_OR_RETURN(mains_[i], compressed_[i]->DecodedBat());
      compressed_[i] = nullptr;
    }
    str_dicts_[i] = nullptr;  // the plain BAT is already resident
  }
  // Contents are unchanged, but cached plans/results key on the version
  // and the representation they bound to; be conservative.
  ++all_visible_version_;
  ++version_;
  return Status::OK();
}

BatPtr Table::VisibleCandidates(const txn::Snapshot& snap) const {
  const size_t nmain = MainRowCount();
  const size_t nins = inserts_[0]->Count();
  const size_t nrows = nmain + nins;
  // Visible insert rows. Commits append in timestamp order and a pending
  // owner's rows sit at the tail, so the visible set is *usually* a
  // prefix — but a transaction that started before an unrelated commit
  // can own the tail while not seeing that commit, so check row by row.
  size_t vis_prefix = 0;
  bool prefix = true;  // visible insert rows form [0, vis_prefix)
  bool hole = false;
  bool all_ins = true;
  std::vector<char> ins_vis;
  if (nins > 0) {
    ins_vis.resize(nins);
    for (size_t j = 0; j < nins; ++j) {
      const bool v = snap.Sees(insert_stamps_[j]);
      ins_vis[j] = v ? 1 : 0;
      all_ins = all_ins && v;
      if (v && !hole) {
        ++vis_prefix;
      } else if (v) {
        prefix = false;  // visible row after a hole
      } else {
        hole = true;
      }
    }
  }
  // Delete marks the snapshot sees.
  const size_t ndead = deleted_->Count();
  const std::vector<uint64_t>& dstamps = *deleted_stamps_;
  size_t seen_dead = 0;
  for (size_t d = 0; d < ndead; ++d) {
    if (snap.Sees(dstamps[d])) ++seen_dead;
  }
  if (seen_dead == 0) {
    if (nins == 0 || all_ins) return Bat::NewDense(0, nrows);
    if (prefix) return Bat::NewDense(0, nmain + vis_prefix);
  }
  BatPtr out = Bat::New(PhysType::kOid);
  out->Reserve(nrows - seen_dead);
  size_t d = 0;
  for (Oid o = 0; o < nrows; ++o) {
    while (d < ndead && deleted_->OidAt(d) < o) ++d;
    const bool dead =
        d < ndead && deleted_->OidAt(d) == o && snap.Sees(dstamps[d]);
    const bool born = o < nmain || ins_vis[o - nmain] != 0;
    if (born && !dead) out->Append<Oid>(o);
  }
  out->mutable_props().sorted = true;
  out->mutable_props().key = true;
  return out;
}

uint64_t Table::VisibleStateKey(const txn::Snapshot& snap) const {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t h = mix(0x14ull, all_visible_version_);
  for (auto it = commit_history_.rbegin(); it != commit_history_.rend();
       ++it) {
    if (it->first <= snap.ts) {
      h = mix(mix(h, it->first), it->second);
      break;
    }
  }
  if (pending_owner_ != 0 && pending_owner_ == snap.txn_id) {
    // The owner's own statements see its uncommitted writes; key them on
    // the write progress so each statement invalidates the last. Txn IDs
    // are never reused, so stale own-entries can never wrongly hit.
    h = mix(mix(h, pending_owner_), version_);
  }
  return h;
}

bool Table::AcquireWrite(uint64_t txn_id) {
  if (pending_owner_ != 0 && pending_owner_ != txn_id) return false;
  pending_owner_ = txn_id;
  return true;
}

void Table::ReleaseWrite(uint64_t txn_id) {
  if (pending_owner_ == txn_id) pending_owner_ = 0;
}

void Table::CommitVersions(uint64_t txn_id, uint64_t commit_ts) {
  const uint64_t pending = txn::PendingStamp(txn_id);
  for (uint64_t& s : insert_stamps_) {
    if (s == pending) s = commit_ts;
  }
  bool has_pending_marks = false;
  for (const uint64_t s : *deleted_stamps_) {
    has_pending_marks = has_pending_marks || s == pending;
  }
  if (has_pending_marks) {
    auto restamped =
        std::make_shared<std::vector<uint64_t>>(*deleted_stamps_);
    for (uint64_t& s : *restamped) {
      if (s == pending) s = commit_ts;
    }
    deleted_stamps_ = std::move(restamped);
  }
  NoteCommit(commit_ts);
  ReleaseWrite(txn_id);
}

void Table::NoteCommit(uint64_t commit_ts) {
  commit_history_.emplace_back(commit_ts, version_);
}

Result<TablePtr> Table::FromStorage(
    std::string name, std::vector<ColumnDef> schema,
    std::vector<BatPtr> mains,
    std::vector<std::shared_ptr<const compress::CompressedBat>> comps,
    std::vector<std::shared_ptr<const compress::StrDict>> sdicts,
    bool policy) {
  MAMMOTH_ASSIGN_OR_RETURN(TablePtr t,
                           Create(std::move(name), std::move(schema)));
  if (mains.size() != t->schema_.size() ||
      comps.size() != t->schema_.size() ||
      sdicts.size() != t->schema_.size()) {
    return Status::InvalidArgument("FromStorage: column count mismatch");
  }
  size_t nrows = 0;
  for (size_t i = 0; i < t->schema_.size(); ++i) {
    size_t count = 0;
    if (comps[i] != nullptr) {
      if (comps[i]->type() != t->schema_[i].type) {
        return Status::TypeMismatch("FromStorage: compressed column " +
                                    t->schema_[i].name + " type mismatch");
      }
      count = comps[i]->Count();
    } else if (sdicts[i] != nullptr) {
      if (t->schema_[i].type != PhysType::kStr) {
        return Status::TypeMismatch("FromStorage: dictionary column " +
                                    t->schema_[i].name + " is not a string");
      }
      count = sdicts[i]->Count();
    } else {
      if (mains[i] == nullptr || mains[i]->type() != t->schema_[i].type) {
        return Status::TypeMismatch("FromStorage: column " +
                                    t->schema_[i].name + " type mismatch");
      }
      count = mains[i]->Count();
    }
    if (i == 0) {
      nrows = count;
    } else if (count != nrows) {
      return Status::InvalidArgument("FromStorage: column lengths differ");
    }
  }
  for (size_t i = 0; i < t->schema_.size(); ++i) {
    if (comps[i] != nullptr) {
      t->compressed_[i] = std::move(comps[i]);
    } else if (sdicts[i] != nullptr) {
      // Rebuild the plain execution image once, at (exclusive) load time;
      // the dictionary stays alongside for code-space scans and the next
      // snapshot.
      MAMMOTH_ASSIGN_OR_RETURN(t->mains_[i], sdicts[i]->Decode());
      t->str_dicts_[i] = std::move(sdicts[i]);
      t->inserts_[i] = Bat::NewString(t->mains_[i]->heap());
    } else {
      t->mains_[i] = std::move(mains[i]);
      if (t->schema_[i].type == PhysType::kStr) {
        t->inserts_[i] = Bat::NewString(t->mains_[i]->heap());
      }
    }
  }
  t->compress_policy_ = policy;
  return t;
}

size_t Table::CompressedColumnCount() const {
  size_t n = 0;
  for (const auto& c : compressed_) n += c != nullptr ? 1 : 0;
  for (const auto& d : str_dicts_) n += d != nullptr ? 1 : 0;
  return n;
}

size_t Table::CompressedBytesTotal() const {
  size_t n = 0;
  for (const auto& c : compressed_) {
    if (c != nullptr) n += c->CompressedBytes();
  }
  for (const auto& d : str_dicts_) {
    if (d != nullptr) n += d->CompressedBytes();
  }
  return n;
}

size_t Table::CompressedLogicalBytesTotal() const {
  size_t n = 0;
  for (const auto& c : compressed_) {
    if (c != nullptr) n += c->LogicalBytes();
  }
  for (const auto& d : str_dicts_) {
    if (d != nullptr) n += d->LogicalBytes();
  }
  return n;
}

size_t Table::CompressedCacheBytesTotal() const {
  size_t n = 0;
  for (const auto& c : compressed_) {
    if (c != nullptr) n += c->DecodedCacheBytes();
  }
  return n;
}

}  // namespace mammoth
