#include "core/setops.h"

#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "core/dispatch.h"

namespace mammoth::algebra {

namespace {

Status ValidateCands(const BatPtr& b, const char* what) {
  if (b == nullptr) return Status::InvalidArgument(std::string(what) + ": null");
  if (b->type() != PhysType::kOid) {
    return Status::TypeMismatch(std::string(what) + ": need bat[:oid]");
  }
  if (!b->props().sorted && !b->IsDenseTail()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": candidates must be sorted");
  }
  return Status::OK();
}

/// Wraps the result with candidate-list properties, converting contiguous
/// runs back into dense BATs.
BatPtr FinishCands(std::vector<Oid> oids) {
  if (!oids.empty() && oids.back() - oids.front() + 1 == oids.size()) {
    return Bat::NewDense(oids.front(), oids.size());
  }
  BatPtr r = Bat::New(PhysType::kOid);
  r->AppendRaw(oids.data(), oids.size());
  r->mutable_props().sorted = true;
  r->mutable_props().key = true;
  return r;
}

}  // namespace

Result<BatPtr> OidUnion(const BatPtr& a, const BatPtr& b) {
  MAMMOTH_RETURN_IF_ERROR(ValidateCands(a, "union"));
  MAMMOTH_RETURN_IF_ERROR(ValidateCands(b, "union"));
  std::vector<Oid> out;
  out.reserve(a->Count() + b->Count());
  size_t i = 0, j = 0;
  while (i < a->Count() || j < b->Count()) {
    if (j >= b->Count()) {
      out.push_back(a->OidAt(i++));
    } else if (i >= a->Count()) {
      out.push_back(b->OidAt(j++));
    } else {
      const Oid x = a->OidAt(i), y = b->OidAt(j);
      if (x < y) {
        out.push_back(x);
        ++i;
      } else if (y < x) {
        out.push_back(y);
        ++j;
      } else {
        out.push_back(x);
        ++i;
        ++j;
      }
    }
  }
  return FinishCands(std::move(out));
}

Result<BatPtr> OidIntersect(const BatPtr& a, const BatPtr& b) {
  MAMMOTH_RETURN_IF_ERROR(ValidateCands(a, "intersect"));
  MAMMOTH_RETURN_IF_ERROR(ValidateCands(b, "intersect"));
  std::vector<Oid> out;
  size_t i = 0, j = 0;
  while (i < a->Count() && j < b->Count()) {
    const Oid x = a->OidAt(i), y = b->OidAt(j);
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out.push_back(x);
      ++i;
      ++j;
    }
  }
  return FinishCands(std::move(out));
}

Result<BatPtr> OidDiff(const BatPtr& a, const BatPtr& b) {
  MAMMOTH_RETURN_IF_ERROR(ValidateCands(a, "diff"));
  MAMMOTH_RETURN_IF_ERROR(ValidateCands(b, "diff"));
  std::vector<Oid> out;
  out.reserve(a->Count());
  size_t i = 0, j = 0;
  while (i < a->Count()) {
    const Oid x = a->OidAt(i);
    while (j < b->Count() && b->OidAt(j) < x) ++j;
    if (j >= b->Count() || b->OidAt(j) != x) out.push_back(x);
    ++i;
  }
  return FinishCands(std::move(out));
}

namespace {

template <typename T, bool kAnti>
BatPtr HashSemiJoin(const Bat& l, const Bat& r) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(r.Count() * 2);
  const T* rv = r.TailData<T>();
  for (size_t i = 0; i < r.Count(); ++i) {
    keys.insert(static_cast<uint64_t>(rv[i]));
  }
  const T* lv = l.TailData<T>();
  BatPtr out = Bat::New(PhysType::kOid);
  const Oid base = l.hseqbase();
  for (size_t i = 0; i < l.Count(); ++i) {
    const bool hit = keys.count(static_cast<uint64_t>(lv[i])) > 0;
    if (hit != kAnti) out->Append<Oid>(base + i);
  }
  out->mutable_props().sorted = true;
  out->mutable_props().key = true;
  return out;
}

template <bool kAnti>
Result<BatPtr> SemiJoinImpl(const BatPtr& l, const BatPtr& r) {
  if (l == nullptr || r == nullptr) {
    return Status::InvalidArgument("semijoin: null input");
  }
  if (l->type() != r->type()) {
    return Status::TypeMismatch("semijoin: tail types differ");
  }
  if (l->type() == PhysType::kStr) {
    // Compare string content (heaps may differ between the two BATs); the
    // views stay valid because nothing is interned during the join.
    std::unordered_set<std::string_view> keys;
    for (size_t i = 0; i < r->Count(); ++i) {
      keys.insert(r->StringAt(i));
    }
    BatPtr out = Bat::New(PhysType::kOid);
    const Oid base = l->hseqbase();
    for (size_t i = 0; i < l->Count(); ++i) {
      const bool hit = keys.count(l->StringAt(i)) > 0;
      if (hit != kAnti) out->Append<Oid>(base + i);
    }
    out->mutable_props().sorted = true;
    out->mutable_props().key = true;
    return out;
  }
  if (l->type() == PhysType::kFloat || l->type() == PhysType::kDouble) {
    return Status::Unimplemented("semijoin on floating keys");
  }
  BatPtr lm = l, rm = r;
  if (lm->IsDenseTail()) {
    lm = lm->Clone();
    lm->MaterializeDense();
  }
  if (rm->IsDenseTail()) {
    rm = rm->Clone();
    rm->MaterializeDense();
  }
  return DispatchNumeric(lm->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    if constexpr (std::is_floating_point_v<T>) {
      return nullptr;  // unreachable: rejected above
    } else {
      return HashSemiJoin<T, kAnti>(*lm, *rm);
    }
  });
}

}  // namespace

Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r) {
  return SemiJoinImpl<false>(l, r);
}

Result<BatPtr> AntiJoin(const BatPtr& l, const BatPtr& r) {
  return SemiJoinImpl<true>(l, r);
}

}  // namespace mammoth::algebra
