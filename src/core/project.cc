#include "core/project.h"

#include "core/candidates.h"
#include "core/dispatch.h"

namespace mammoth::algebra {

namespace {

using parallel::ExecContext;
using parallel::TaskPool;

/// The typed gather loop: out[i] = in[position of oid i], bounds-checked.
/// Each morsel owns the disjoint output slice [begin, end), so the parallel
/// and serial schedules write identical bytes.
template <typename T>
Status GatherSlices(const CandidateReader& cr, const T* in, T* out,
                    size_t n, size_t vcount, const ExecContext& ctx) {
  return ctx.ParallelFor(
      n, TaskPool::kDefaultGrain,
      [&](size_t begin, size_t end, int /*worker*/) {
        for (size_t i = begin; i < end; ++i) {
          const size_t pos = cr.PositionAt(i);
          if (pos >= vcount) {
            return Status::OutOfRange("project: oid beyond value BAT");
          }
          out[i] = in[pos];
        }
        return Status::OK();
      });
}

}  // namespace

Result<BatPtr> Project(const BatPtr& oids, const BatPtr& values,
                       const parallel::ExecContext& ctx) {
  if (oids == nullptr || values == nullptr) {
    return Status::InvalidArgument("project: null input");
  }
  if (oids->type() != PhysType::kOid) {
    return Status::TypeMismatch("project: oid list must be bat[:oid]");
  }
  const size_t n = oids->Count();
  const Oid vbase = values->hseqbase();
  const size_t vcount = values->Count();

  // Dense OID list over a dense value tail: result stays dense.
  if (oids->IsDenseTail() && values->IsDenseTail()) {
    const Oid start =
        values->tseqbase() + (oids->tseqbase() - vbase);
    BatPtr r = Bat::NewDense(start, n, oids->hseqbase());
    return r;
  }

  CandidateReader cr(oids.get(), values.get());

  BatPtr base = values;
  if (values->IsDenseTail()) {
    base = values->Clone();
    base->MaterializeDense();
  }

  BatPtr r;
  if (base->type() == PhysType::kStr) {
    r = Bat::NewString(base->heap());
    r->Resize(n);
    MAMMOTH_RETURN_IF_ERROR(GatherSlices<uint64_t>(
        cr, base->TailData<uint64_t>(), r->MutableTailData<uint64_t>(), n,
        vcount, ctx));
  } else {
    r = Bat::New(base->type());
    r->Resize(n);
    MAMMOTH_RETURN_IF_ERROR(DispatchNumeric(base->type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      return GatherSlices<T>(cr, base->TailData<T>(), r->MutableTailData<T>(),
                             n, vcount, ctx);
    }));
  }
  r->set_hseqbase(oids->hseqbase());
  return r;
}

}  // namespace mammoth::algebra
