#include "core/project.h"

#include "core/candidates.h"
#include "core/dispatch.h"

namespace mammoth::algebra {

Result<BatPtr> Project(const BatPtr& oids, const BatPtr& values) {
  if (oids == nullptr || values == nullptr) {
    return Status::InvalidArgument("project: null input");
  }
  if (oids->type() != PhysType::kOid) {
    return Status::TypeMismatch("project: oid list must be bat[:oid]");
  }
  const size_t n = oids->Count();
  const Oid vbase = values->hseqbase();
  const size_t vcount = values->Count();

  // Dense OID list over a dense value tail: result stays dense.
  if (oids->IsDenseTail() && values->IsDenseTail()) {
    const Oid start =
        values->tseqbase() + (oids->tseqbase() - vbase);
    BatPtr r = Bat::NewDense(start, n, oids->hseqbase());
    return r;
  }

  // Bounds check once up front (kernel loops stay check-free).
  CandidateReader cr(oids.get(), values.get());
  for (size_t i = 0; i < n; ++i) {
    if (cr.PositionAt(i) >= vcount) {
      return Status::OutOfRange("project: oid beyond value BAT");
    }
  }

  BatPtr base = values;
  if (values->IsDenseTail()) {
    base = values->Clone();
    base->MaterializeDense();
  }

  BatPtr r;
  if (base->type() == PhysType::kStr) {
    r = Bat::NewString(base->heap());
    r->Resize(n);
    const uint64_t* in = base->TailData<uint64_t>();
    uint64_t* out = r->MutableTailData<uint64_t>();
    for (size_t i = 0; i < n; ++i) out[i] = in[cr.PositionAt(i)];
  } else {
    r = Bat::New(base->type());
    r->Resize(n);
    DispatchNumeric(base->type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const T* in = base->TailData<T>();
      T* out = r->MutableTailData<T>();
      for (size_t i = 0; i < n; ++i) out[i] = in[cr.PositionAt(i)];
    });
  }
  r->set_hseqbase(oids->hseqbase());
  return r;
}

}  // namespace mammoth::algebra
