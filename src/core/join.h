#ifndef MAMMOTH_CORE_JOIN_H_
#define MAMMOTH_CORE_JOIN_H_

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::algebra {

/// A join result is a pair of aligned OID BATs — the join index of [39]
/// (§4.3 phase one): row i matches left head OID `left[i]` with right head
/// OID `right[i]`.
struct JoinResult {
  BatPtr left;
  BatPtr right;
  size_t Count() const { return left == nullptr ? 0 : left->Count(); }
};

/// Equi-join on tail values using a bucket-chained hash table built on the
/// right (inner) side — the "simple hash join" baseline of §4.1. Access to
/// the hash table is random; once the inner side outgrows the CPU caches
/// every probe misses, which is exactly what the radix-partitioned variant
/// in join/ fixes.
Result<JoinResult> HashJoin(const BatPtr& l, const BatPtr& r);

/// Equi-join for tails that are both sorted: linear merge.
Result<JoinResult> MergeJoin(const BatPtr& l, const BatPtr& r);

/// Dispatches to MergeJoin when both inputs are sorted, else HashJoin.
Result<JoinResult> Join(const BatPtr& l, const BatPtr& r);

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_JOIN_H_
