#include "core/select.h"

#include <algorithm>
#include <limits>

#include "core/candidates.h"
#include "core/dispatch.h"
#include "parallel/stitch.h"

namespace mammoth::algebra {

namespace {

using parallel::ExecContext;
using parallel::MorselCollector;
using parallel::TaskPool;

/// Marks a freshly built select result with its guaranteed properties.
void StampSelectResult(const BatPtr& r) {
  r->mutable_props().sorted = true;
  r->mutable_props().key = true;
  r->mutable_props().revsorted = r->Count() <= 1;
}

/// Parallel candidate scan: each worker filters its morsels into a private
/// buffer through `emit(sink, pos_begin, pos_end)`; the runs are stitched
/// back in morsel order, so the output equals the serial left-to-right scan
/// exactly. Returns false when the range is too small (or the context
/// serial), in which case the caller runs its serial loop.
template <typename EmitFn>
bool ParallelScan(const ExecContext& ctx, size_t n, BatPtr* out,
                  const EmitFn& emit) {
  constexpr size_t kGrain = TaskPool::kDefaultGrain;
  if (ctx.threads() <= 1 || n <= kGrain * 2) return false;
  MorselCollector<Oid> collect(ctx.threads(), n, kGrain);
  Status s = ctx.ParallelFor(
      n, kGrain, [&](size_t begin, size_t end, int worker) {
        auto sink = collect.BeginMorsel(begin, worker);
        emit(sink, begin, end);
        return Status::OK();
      });
  MAMMOTH_CHECK(s.ok(), "select scan cannot fail");
  BatPtr r = Bat::New(PhysType::kOid);
  r->Resize(collect.Total());
  collect.Stitch(r->MutableTailData<Oid>());
  StampSelectResult(r);
  *out = std::move(r);
  return true;
}

/// Scan select over numeric tails. One instantiation per element type; the
/// comparison op stays a parameter but the loop body is branch-predictable
/// (op is loop-invariant).
template <typename T>
BatPtr ScanThetaSelect(const Bat& b, const Bat* cands, T v, CmpOp op,
                       const ExecContext& ctx) {
  CandidateReader cr(cands, &b);
  const T* tail = b.TailData<T>();
  const Oid hseq = b.hseqbase();
  const size_t n = cr.size();

  BatPtr parallel_result;
  const bool went_parallel = ParallelScan(
      ctx, n, &parallel_result,
      [&](MorselCollector<Oid>::Sink& sink, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const size_t pos = cr.PositionAt(i);
          if (ApplyCmp(op, tail[pos], v)) sink.Append(hseq + pos);
        }
      });
  if (went_parallel) return parallel_result;

  BatPtr r = Bat::New(PhysType::kOid);
  r->Reserve(n / 4 + 16);
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = cr.PositionAt(i);
    if (ApplyCmp(op, tail[pos], v)) r->Append<Oid>(hseq + pos);
  }
  StampSelectResult(r);
  return r;
}

/// Binary-search select over a sorted numeric tail with full candidates:
/// O(log n) and a dense (payload-free) result.
template <typename T>
BatPtr SortedRangeSelect(const Bat& b, T lo, T hi, bool lo_incl,
                         bool hi_incl) {
  const T* tail = b.TailData<T>();
  const size_t n = b.Count();
  const T* first = lo_incl ? std::lower_bound(tail, tail + n, lo)
                           : std::upper_bound(tail, tail + n, lo);
  const T* last = hi_incl ? std::upper_bound(tail, tail + n, hi)
                          : std::lower_bound(tail, tail + n, hi);
  if (last < first) last = first;
  const size_t begin = static_cast<size_t>(first - tail);
  const size_t count = static_cast<size_t>(last - first);
  return Bat::NewDense(b.hseqbase() + begin, count);
}

template <typename T>
BatPtr ScanRangeSelect(const Bat& b, const Bat* cands, T lo, T hi,
                       bool lo_incl, bool hi_incl, bool has_lo, bool has_hi,
                       bool anti, const ExecContext& ctx) {
  CandidateReader cr(cands, &b);
  const T* tail = b.TailData<T>();
  const Oid hseq = b.hseqbase();
  const size_t n = cr.size();
  const auto keep = [&](T x) {
    bool in = true;
    if (has_lo) in = lo_incl ? (x >= lo) : (x > lo);
    if (in && has_hi) in = hi_incl ? (x <= hi) : (x < hi);
    return in != anti;
  };

  BatPtr parallel_result;
  const bool went_parallel = ParallelScan(
      ctx, n, &parallel_result,
      [&](MorselCollector<Oid>::Sink& sink, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const size_t pos = cr.PositionAt(i);
          if (keep(tail[pos])) sink.Append(hseq + pos);
        }
      });
  if (went_parallel) return parallel_result;

  BatPtr r = Bat::New(PhysType::kOid);
  r->Reserve(n / 4 + 16);
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = cr.PositionAt(i);
    if (keep(tail[pos])) r->Append<Oid>(hseq + pos);
  }
  StampSelectResult(r);
  return r;
}

/// String theta-select. Equality exploits heap interning (string equality
/// becomes offset equality); ordering falls back to lexicographic compare.
/// Stays serial: the ordered cases chase heap pointers, and the eq case is
/// already a plain offset-compare scan.
BatPtr StringThetaSelect(const Bat& b, const Bat* cands,
                         const std::string& v, CmpOp op) {
  CandidateReader cr(cands, &b);
  const uint64_t* offs = b.TailData<uint64_t>();
  const Oid hseq = b.hseqbase();
  const StringHeap& heap = *b.heap();
  BatPtr r = Bat::New(PhysType::kOid);
  const size_t n = cr.size();

  if (op == CmpOp::kEq || op == CmpOp::kNe) {
    uint64_t target = 0;
    const bool present = heap.Find(v, &target);
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = cr.PositionAt(i);
      const bool eq = present && offs[pos] == target;
      if (eq == (op == CmpOp::kEq)) r->Append<Oid>(hseq + pos);
    }
  } else {
    const std::string_view vv = v;
    for (size_t i = 0; i < n; ++i) {
      const size_t pos = cr.PositionAt(i);
      const std::string_view s = heap.Get(offs[pos]);
      bool keep = false;
      switch (op) {
        case CmpOp::kLt:
          keep = s < vv;
          break;
        case CmpOp::kLe:
          keep = s <= vv;
          break;
        case CmpOp::kGe:
          keep = s >= vv;
          break;
        case CmpOp::kGt:
          keep = s > vv;
          break;
        case CmpOp::kLike:
          keep = LikeMatch(s, vv);
          break;
        default:
          break;
      }
      if (keep) r->Append<Oid>(hseq + pos);
    }
  }
  StampSelectResult(r);
  return r;
}

}  // namespace

Result<BatPtr> ThetaSelect(const BatPtr& b, const BatPtr& cands,
                           const Value& v, CmpOp op,
                           const parallel::ExecContext& ctx) {
  if (b == nullptr) return Status::InvalidArgument("select: null input");
  if (b->type() == PhysType::kStr) {
    if (!v.is_str()) {
      return Status::TypeMismatch("select: string column vs non-string value");
    }
    return StringThetaSelect(*b, cands.get(), v.AsStr(), op);
  }
  if (!v.is_numeric()) {
    return Status::TypeMismatch("select: numeric column vs non-numeric value");
  }
  // Sorted fast path for range-shaped ops without candidates.
  if (b->props().sorted && cands == nullptr && !b->IsDenseTail()) {
    return DispatchNumeric(b->type(), [&](auto tag) -> BatPtr {
      using T = typename decltype(tag)::type;
      const T tv = v.As<T>();
      switch (op) {
        case CmpOp::kLt:
          return SortedRangeSelect<T>(*b, std::numeric_limits<T>::lowest(),
                                      tv, true, false);
        case CmpOp::kLe:
          return SortedRangeSelect<T>(*b, std::numeric_limits<T>::lowest(),
                                      tv, true, true);
        case CmpOp::kEq:
          return SortedRangeSelect<T>(*b, tv, tv, true, true);
        case CmpOp::kGe:
          return SortedRangeSelect<T>(*b, tv, std::numeric_limits<T>::max(),
                                      true, true);
        case CmpOp::kGt:
          return SortedRangeSelect<T>(*b, tv, std::numeric_limits<T>::max(),
                                      false, true);
        case CmpOp::kNe:
        default:
          return ScanThetaSelect<T>(*b, cands.get(), tv, op, ctx);
      }
    });
  }
  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }
  return DispatchNumeric(base->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    return ScanThetaSelect<T>(*base, cands.get(), v.As<T>(), op, ctx);
  });
}

Result<BatPtr> RangeSelect(const BatPtr& b, const BatPtr& cands,
                           const Value& lo, const Value& hi, bool lo_incl,
                           bool hi_incl, bool anti,
                           const parallel::ExecContext& ctx) {
  if (b == nullptr) return Status::InvalidArgument("select: null input");
  if (b->type() == PhysType::kStr) {
    return Status::Unimplemented("range select on strings");
  }
  const bool has_lo = !lo.is_nil();
  const bool has_hi = !hi.is_nil();
  if ((has_lo && !lo.is_numeric()) || (has_hi && !hi.is_numeric())) {
    return Status::TypeMismatch("range select: non-numeric bound");
  }
  if (b->props().sorted && cands == nullptr && !anti && !b->IsDenseTail()) {
    return DispatchNumeric(b->type(), [&](auto tag) -> BatPtr {
      using T = typename decltype(tag)::type;
      const T tlo = has_lo ? lo.As<T>() : std::numeric_limits<T>::lowest();
      const T thi = has_hi ? hi.As<T>() : std::numeric_limits<T>::max();
      return SortedRangeSelect<T>(*b, tlo, thi, has_lo ? lo_incl : true,
                                  has_hi ? hi_incl : true);
    });
  }
  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }
  return DispatchNumeric(base->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    const T tlo = has_lo ? lo.As<T>() : T{};
    const T thi = has_hi ? hi.As<T>() : T{};
    return ScanRangeSelect<T>(*base, cands.get(), tlo, thi, lo_incl, hi_incl,
                              has_lo, has_hi, anti, ctx);
  });
}

}  // namespace mammoth::algebra
