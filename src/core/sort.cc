#include "core/sort.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/dispatch.h"
#include "core/project.h"

namespace mammoth::algebra {

namespace {

/// LSB radix sort of (key, position) pairs for 32-bit integer tails.
/// Three 11-bit passes; stable, O(n) — the kind of bulk-friendly algorithm
/// column-wise execution favors (§2).
void RadixSortInt32(const int32_t* v, size_t n, std::vector<uint32_t>* perm) {
  constexpr int kBitsPerPass = 11;
  constexpr size_t kBuckets = 1u << kBitsPerPass;
  constexpr uint32_t kMask = kBuckets - 1;

  std::vector<uint32_t> src(n), dst(n);
  std::iota(src.begin(), src.end(), 0u);
  // Bias keys so negative ints sort before positives.
  auto key_of = [v](uint32_t idx) {
    return static_cast<uint32_t>(v[idx]) ^ 0x80000000u;
  };
  std::vector<uint32_t> hist(kBuckets);
  for (int pass = 0; pass < 3; ++pass) {
    const int shift = pass * kBitsPerPass;
    std::fill(hist.begin(), hist.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      ++hist[(key_of(src[i]) >> shift) & kMask];
    }
    uint32_t sum = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint32_t c = hist[b];
      hist[b] = sum;
      sum += c;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[hist[(key_of(src[i]) >> shift) & kMask]++] = src[i];
    }
    std::swap(src, dst);
  }
  // 33 bits of key over 3 passes of 11 bits: src now holds the permutation.
  *perm = std::move(src);
}

}  // namespace

Result<SortResult> Sort(const BatPtr& b, bool descending) {
  if (b == nullptr) return Status::InvalidArgument("sort: null input");
  const size_t n = b->Count();

  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }

  std::vector<uint32_t> perm;
  if (base->type() == PhysType::kInt32 && !descending && n > 1) {
    RadixSortInt32(base->TailData<int32_t>(), n, &perm);
  } else {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), 0u);
    if (base->type() == PhysType::kStr) {
      const uint64_t* offs = base->TailData<uint64_t>();
      const StringHeap& heap = *base->heap();
      std::stable_sort(perm.begin(), perm.end(),
                       [&](uint32_t a, uint32_t c) {
                         return descending ? heap.Get(offs[c]) < heap.Get(offs[a])
                                           : heap.Get(offs[a]) < heap.Get(offs[c]);
                       });
    } else {
      DispatchNumeric(base->type(), [&](auto tag) {
        using T = typename decltype(tag)::type;
        const T* v = base->TailData<T>();
        std::stable_sort(perm.begin(), perm.end(),
                         [&](uint32_t a, uint32_t c) {
                           return descending ? v[c] < v[a] : v[a] < v[c];
                         });
      });
    }
  }

  SortResult out;
  out.order = Bat::New(PhysType::kOid);
  out.order->Resize(n);
  Oid* ord = out.order->MutableTailData<Oid>();
  const Oid hseq = base->hseqbase();
  for (size_t i = 0; i < n; ++i) ord[i] = hseq + perm[i];
  out.order->mutable_props().key = true;

  MAMMOTH_ASSIGN_OR_RETURN(out.sorted, Project(out.order, base));
  out.sorted->mutable_props().sorted = !descending;
  out.sorted->mutable_props().revsorted = descending || n <= 1;
  return out;
}

Result<BatPtr> TopN(const BatPtr& b, size_t k, bool descending) {
  if (b == nullptr) return Status::InvalidArgument("topn: null input");
  MAMMOTH_ASSIGN_OR_RETURN(SortResult s, Sort(b, descending));
  const size_t n = std::min(k, s.order->Count());
  BatPtr r = Bat::New(PhysType::kOid);
  r->AppendRaw(s.order->TailData<Oid>(), n);
  r->mutable_props().key = true;
  return r;
}

}  // namespace mammoth::algebra
