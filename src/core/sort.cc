#include "core/sort.h"

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/candidates.h"
#include "core/dispatch.h"
#include "core/project.h"
#include "parallel/loser_tree.h"
#include "parallel/task_pool.h"

namespace mammoth::algebra {

namespace {

using parallel::ExecContext;
using parallel::LoserTree;
using parallel::TaskPool;

/// Inputs below two morsels always run the serial schedule, matching the
/// dispatch threshold of the PR 1 kernels: pool hand-off would cost more
/// than the sort itself.
constexpr size_t kParallelSortMin = 2 * TaskPool::kDefaultGrain;

// ------------------------------------------------------------ radix path --
//
// LSB radix sort of the position permutation for integer tails. Every pass
// is a stable counting scatter on 11 key bits; the parallel pass uses
// per-morsel histograms combined by a bucket-major / chunk-minor prefix sum
// (the same disjoint-destination scheme as the parallel radix-cluster
// passes in join/radix_cluster.h), so the scattered layout — and therefore
// the final permutation — is byte-identical to the serial pass.

constexpr int kRadixBits = 11;
constexpr size_t kRadixBuckets = size_t{1} << kRadixBits;

/// Maps a value to the unsigned key whose ascending order is the requested
/// output order: signed values are biased so negatives sort first, and a
/// descending ask complements the key (stable descending == stable
/// ascending on complemented keys).
template <typename T>
inline std::make_unsigned_t<T> RadixKey(T v, bool descending) {
  using U = std::make_unsigned_t<T>;
  U u = static_cast<U>(v);
  if constexpr (std::is_signed_v<T>) {
    u ^= U{1} << (8 * sizeof(U) - 1);
  }
  return descending ? static_cast<U>(~u) : u;
}

template <typename T>
void RadixPass(const T* v, bool descending, int shift, const uint32_t* src,
               uint32_t* dst, size_t n, const ExecContext& ctx) {
  const auto bucket_of = [v, descending, shift](uint32_t idx) {
    return static_cast<size_t>((RadixKey(v[idx], descending) >> shift) &
                               (kRadixBuckets - 1));
  };
  const size_t grain = TaskPool::kDefaultGrain;
  if (ctx.threads() <= 1 || n < kParallelSortMin) {
    std::vector<size_t> hist(kRadixBuckets, 0);
    for (size_t i = 0; i < n; ++i) ++hist[bucket_of(src[i])];
    size_t sum = 0;
    for (size_t b = 0; b < kRadixBuckets; ++b) {
      const size_t count = hist[b];
      hist[b] = sum;
      sum += count;
    }
    for (size_t i = 0; i < n; ++i) dst[hist[bucket_of(src[i])]++] = src[i];
    return;
  }

  // Phase A: per-chunk histograms (chunks own disjoint hist rows).
  const size_t nchunks = (n + grain - 1) / grain;
  std::vector<std::vector<size_t>> hist(nchunks);
  Status st = ctx.ParallelFor(
      n, grain, [&](size_t begin, size_t end, int /*worker*/) {
        std::vector<size_t>& h = hist[begin / grain];
        h.assign(kRadixBuckets, 0);
        for (size_t i = begin; i < end; ++i) ++h[bucket_of(src[i])];
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "radix histogram cannot fail");

  // Bucket-major, chunk-minor prefix walk: chunk c's cursor for bucket b
  // starts after bucket b's rows from earlier chunks and all earlier
  // buckets — exactly the slot the serial left-to-right scatter would use.
  size_t sum = 0;
  for (size_t b = 0; b < kRadixBuckets; ++b) {
    for (size_t c = 0; c < nchunks; ++c) {
      const size_t count = hist[c][b];
      hist[c][b] = sum;
      sum += count;
    }
  }

  // Phase B: scatter; every chunk advances only its own cursors.
  st = ctx.ParallelFor(
      n, grain, [&](size_t begin, size_t end, int /*worker*/) {
        std::vector<size_t>& cur = hist[begin / grain];
        for (size_t i = begin; i < end; ++i) {
          dst[cur[bucket_of(src[i])]++] = src[i];
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "radix scatter cannot fail");
}

template <typename T>
void RadixSortPerm(const T* v, size_t n, bool descending,
                   const ExecContext& ctx, std::vector<uint32_t>* out) {
  constexpr int kPasses =
      static_cast<int>((8 * sizeof(T) + kRadixBits - 1) / kRadixBits);
  std::vector<uint32_t>& src = *out;
  src.resize(n);
  std::vector<uint32_t> dst(n);
  Status st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) {
          src[i] = static_cast<uint32_t>(i);
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "radix iota cannot fail");
  for (int pass = 0; pass < kPasses; ++pass) {
    RadixPass(v, descending, pass * kRadixBits, src.data(), dst.data(), n,
              ctx);
    src.swap(dst);
  }
  // kPasses swaps leave the final permutation in src == *out.
}

// ------------------------------------------------------------ merge path --

/// Stable-sort permutation for comparison-ordered tails: morsel-parallel
/// run formation followed by a k-way loser-tree merge. `less` must be a
/// strict *total* order on positions (key comparison, position tie-break);
/// totality makes the permutation unique, so the merged result matches the
/// serial sort exactly no matter how the runs were cut or scheduled.
template <typename Less>
void MergeSortPerm(size_t n, const ExecContext& ctx, Less less,
                   std::vector<uint32_t>* out) {
  std::vector<uint32_t>& perm = *out;
  perm.resize(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  if (n <= 1) return;
  if (ctx.threads() <= 1 || n < kParallelSortMin) {
    std::sort(perm.begin(), perm.end(), less);
    return;
  }
  // Run formation: one contiguous run per morsel, sized so every worker
  // gets about one run but never below the default morsel grain.
  const size_t nthreads = static_cast<size_t>(ctx.threads());
  const size_t grain =
      std::max(TaskPool::kDefaultGrain, (n + nthreads - 1) / nthreads);
  Status st = ctx.ParallelFor(
      n, grain, [&](size_t begin, size_t end, int /*worker*/) {
        std::sort(perm.begin() + static_cast<ptrdiff_t>(begin),
                  perm.begin() + static_cast<ptrdiff_t>(end), less);
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "run formation cannot fail");
  std::vector<std::pair<size_t, size_t>> runs;
  for (size_t begin = 0; begin < n; begin += grain) {
    runs.emplace_back(begin, std::min(begin + grain, n));
  }
  if (runs.size() == 1) return;
  std::vector<uint32_t> merged(n);
  LoserTree<Less> tree(perm.data(), std::move(runs), less);
  for (size_t i = 0; i < n; ++i) merged[i] = tree.Pop();
  perm = std::move(merged);
}

/// Computes the stable ascending/descending permutation of `base`'s tail:
/// radix for 4/8-byte integer tails, run-merge for everything else.
void SortPermutation(const Bat& base, bool descending, const ExecContext& ctx,
                     std::vector<uint32_t>* perm) {
  const size_t n = base.Count();
  if (base.type() == PhysType::kStr) {
    const uint64_t* offs = base.TailData<uint64_t>();
    const StringHeap& heap = *base.heap();
    auto less = [&heap, offs, descending](uint32_t a, uint32_t b) {
      const std::string_view sa = heap.Get(offs[a]);
      const std::string_view sb = heap.Get(offs[b]);
      const int c = sa.compare(sb);
      if (c != 0) return descending ? c > 0 : c < 0;
      return a < b;
    };
    MergeSortPerm(n, ctx, less, perm);
    return;
  }
  DispatchNumeric(base.type(), [&](auto tag) {
    using T = typename decltype(tag)::type;
    const T* v = base.TailData<T>();
    if constexpr (std::is_integral_v<T> && sizeof(T) >= 4) {
      RadixSortPerm(v, n, descending, ctx, perm);
    } else {
      auto less = [v, descending](uint32_t a, uint32_t b) {
        if (descending ? v[b] < v[a] : v[a] < v[b]) return true;
        if (descending ? v[a] < v[b] : v[b] < v[a]) return false;
        return a < b;
      };
      MergeSortPerm(n, ctx, less, perm);
    }
  });
}

// ------------------------------------------------------------ fast paths --

/// True when `b` is already in the asked order (sorted ascending for an
/// ascending ask, reverse-sorted for a descending one) or trivially so.
bool OrderMatches(const BatProperties& p, size_t n, bool descending) {
  return n <= 1 || (descending ? p.revsorted : p.sorted);
}

/// True when `b` is in exactly the opposite order *and* tie-free, so the
/// stable permutation is the plain reversal. Without the key property a
/// reversal would flip the head order of equal keys and diverge from the
/// stable sort.
bool ReversalMatches(const BatProperties& p, bool descending) {
  return p.key && (descending ? p.sorted : p.revsorted);
}

BatPtr ReversedOrderBat(Oid hseq, size_t n, const ExecContext& ctx) {
  BatPtr order = Bat::New(PhysType::kOid);
  order->Resize(n);
  Oid* ord = order->MutableTailData<Oid>();
  Status st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) ord[i] = hseq + (n - 1 - i);
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "order reversal cannot fail");
  BatProperties& op = order->mutable_props();
  op.key = true;
  op.revsorted = true;
  op.sorted = n <= 1;
  return order;
}

}  // namespace

Result<SortResult> Sort(const BatPtr& b, bool descending,
                        const ExecContext& ctx) {
  if (b == nullptr) return Status::InvalidArgument("sort: null input");
  const size_t n = b->Count();
  const Oid hseq = b->hseqbase();
  const BatProperties props = b->props();

  // Property short-circuit: the input already carries the asked order.
  if (OrderMatches(props, n, descending)) {
    SortResult out;
    out.order = Bat::NewDense(hseq, n, 0);
    out.sorted = b->Clone();
    out.sorted->set_hseqbase(0);  // aligned with the order list, like Project
    BatProperties& sp = out.sorted->mutable_props();
    sp.sorted = sp.sorted || !descending || n <= 1;
    sp.revsorted = sp.revsorted || descending || n <= 1;
    sp.key = sp.key || n <= 1;
    return out;
  }
  // Opposite order with no ties: the stable permutation is the reversal.
  if (ReversalMatches(props, descending)) {
    SortResult out;
    out.order = ReversedOrderBat(hseq, n, ctx);
    MAMMOTH_ASSIGN_OR_RETURN(out.sorted, Project(out.order, b, ctx));
    BatProperties& sp = out.sorted->mutable_props();
    sp.sorted = !descending;
    sp.revsorted = descending;
    sp.key = true;
    return out;
  }

  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }

  std::vector<uint32_t> perm;
  SortPermutation(*base, descending, ctx, &perm);

  SortResult out;
  out.order = Bat::New(PhysType::kOid);
  out.order->Resize(n);
  Oid* ord = out.order->MutableTailData<Oid>();
  Status st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) ord[i] = hseq + perm[i];
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "order materialization cannot fail");
  out.order->mutable_props().key = true;

  MAMMOTH_ASSIGN_OR_RETURN(out.sorted, Project(out.order, base, ctx));
  BatProperties& sp = out.sorted->mutable_props();
  // A 0/1-row result is trivially both sorted and reverse-sorted.
  sp.sorted = !descending || n <= 1;
  sp.revsorted = descending || n <= 1;
  return out;
}

namespace {

/// Scans [0, n) keeping the k best positions under `out_less` (a strict
/// total output order on positions): every worker maintains a bounded
/// binary max-heap over the morsels it happens to claim, and the union of
/// the per-worker survivors — which must contain the true top-k — is sorted
/// and truncated serially. The merge makes the result independent of
/// morsel scheduling, so any context yields identical bytes.
template <typename OutLess>
void TopKPositions(size_t n, size_t k, const ExecContext& ctx,
                   OutLess out_less, std::vector<uint32_t>* out) {
  std::vector<std::vector<uint32_t>> heaps(
      static_cast<size_t>(ctx.threads()));
  Status st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int worker) {
        std::vector<uint32_t>& h = heaps[static_cast<size_t>(worker)];
        for (size_t i = begin; i < end; ++i) {
          const uint32_t idx = static_cast<uint32_t>(i);
          if (h.size() < k) {
            h.push_back(idx);
            std::push_heap(h.begin(), h.end(), out_less);
          } else if (out_less(idx, h.front())) {
            // Beats the worst survivor: replace the heap top.
            std::pop_heap(h.begin(), h.end(), out_less);
            h.back() = idx;
            std::push_heap(h.begin(), h.end(), out_less);
          }
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "topn scan cannot fail");
  std::vector<uint32_t>& cand = *out;
  cand.clear();
  for (const std::vector<uint32_t>& h : heaps) {
    cand.insert(cand.end(), h.begin(), h.end());
  }
  std::sort(cand.begin(), cand.end(), out_less);
  if (cand.size() > k) cand.resize(k);
}

}  // namespace

Result<BatPtr> TopN(const BatPtr& b, size_t k, bool descending,
                    const ExecContext& ctx) {
  if (b == nullptr) return Status::InvalidArgument("topn: null input");
  const size_t n = b->Count();
  if (k > n) k = n;
  const Oid hseq = b->hseqbase();
  if (k == 0) {
    BatPtr r = Bat::New(PhysType::kOid);
    r->mutable_props().key = true;
    return r;
  }

  const BatProperties props = b->props();
  // Already in the asked order: the top-k is the first k head OIDs.
  if (OrderMatches(props, n, descending)) {
    return Bat::NewDense(hseq, k, 0);
  }
  // Opposite order, tie-free: the top-k is the last k head OIDs reversed.
  if (ReversalMatches(props, descending)) {
    BatPtr r = Bat::New(PhysType::kOid);
    r->Resize(k);
    Oid* ord = r->MutableTailData<Oid>();
    for (size_t i = 0; i < k; ++i) ord[i] = hseq + (n - 1 - i);
    r->mutable_props().key = true;
    return r;
  }

  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }

  std::vector<uint32_t> top;
  if (base->type() == PhysType::kStr) {
    const uint64_t* offs = base->TailData<uint64_t>();
    const StringHeap& heap = *base->heap();
    auto out_less = [&heap, offs, descending](uint32_t a, uint32_t b2) {
      const std::string_view sa = heap.Get(offs[a]);
      const std::string_view sb = heap.Get(offs[b2]);
      const int c = sa.compare(sb);
      if (c != 0) return descending ? c > 0 : c < 0;
      return a < b2;
    };
    TopKPositions(n, k, ctx, out_less, &top);
  } else {
    DispatchNumeric(base->type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const T* v = base->TailData<T>();
      auto out_less = [v, descending](uint32_t a, uint32_t b2) {
        if (descending ? v[b2] < v[a] : v[a] < v[b2]) return true;
        if (descending ? v[a] < v[b2] : v[b2] < v[a]) return false;
        return a < b2;
      };
      TopKPositions(n, k, ctx, out_less, &top);
    });
  }

  BatPtr r = Bat::New(PhysType::kOid);
  r->Resize(k);
  Oid* ord = r->MutableTailData<Oid>();
  for (size_t i = 0; i < k; ++i) ord[i] = hseq + top[i];
  r->mutable_props().key = true;
  return r;
}

namespace {

/// Phase 1 of RefineSort: reorders `pos` so every tie-group slice
/// [starts[g], starts[g+1]) is stably sorted by value (`less` compares
/// positions by value only). A single all-spanning group runs the full
/// parallel sort machinery with slot tie-breaking; otherwise whole groups
/// fan out to workers, which is deterministic because groups are disjoint.
template <typename ValueLess>
void RefineOrder(std::vector<uint32_t>* pos_io,
                 const std::vector<size_t>& starts, const ExecContext& ctx,
                 ValueLess less) {
  std::vector<uint32_t>& pos = *pos_io;
  const size_t n = pos.size();
  const size_t ngin = starts.size() - 1;
  if (n <= 1) return;
  if (ngin == 1) {
    auto slot_less = [&pos, &less](uint32_t a, uint32_t b) {
      if (less(pos[a], pos[b])) return true;
      if (less(pos[b], pos[a])) return false;
      return a < b;  // stability: earlier incoming slot first
    };
    std::vector<uint32_t> idx;
    MergeSortPerm(n, ctx, slot_less, &idx);
    std::vector<uint32_t> next(n);
    Status st = ctx.ParallelFor(
        n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
          for (size_t i = begin; i < end; ++i) next[i] = pos[idx[i]];
          return Status::OK();
        });
    MAMMOTH_CHECK(st.ok(), "refine gather cannot fail");
    pos = std::move(next);
    return;
  }
  Status st = ctx.ParallelFor(
      ngin, /*grain=*/1, [&](size_t gbegin, size_t gend, int /*worker*/) {
        for (size_t g = gbegin; g < gend; ++g) {
          std::stable_sort(
              pos.begin() + static_cast<ptrdiff_t>(starts[g]),
              pos.begin() + static_cast<ptrdiff_t>(starts[g + 1]),
              [&less](uint32_t a, uint32_t b) { return less(a, b); });
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "refine sort cannot fail");
}

/// Phase 2 of RefineSort: renumbers tie groups over the refined order —
/// a new group starts at every incoming group boundary and at every value
/// change inside a group. Boundary flags are computed morsel-parallel
/// (reads only), the id prefix scan is a cheap serial pass, so ids are
/// identical for any context.
template <typename ValueEq>
size_t RefineGroups(const std::vector<uint32_t>& pos,
                    const std::vector<size_t>& starts, const ExecContext& ctx,
                    ValueEq eq, std::vector<uint32_t>* ids) {
  const size_t n = pos.size();
  ids->assign(n, 0);
  if (n == 0) return 0;
  std::vector<uint8_t> flag(n);
  Status st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) {
          flag[i] = i == 0 || !eq(pos[i], pos[i - 1]) ? 1 : 0;
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "refine flags cannot fail");
  for (size_t g = 1; g + 1 < starts.size(); ++g) flag[starts[g]] = 1;
  uint32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    if (flag[i] && i > 0) ++cur;
    (*ids)[i] = cur;
  }
  return static_cast<size_t>(cur) + 1;
}

}  // namespace

Result<RefineSortResult> RefineSort(const BatPtr& b, const BatPtr& order,
                                    const BatPtr& tie_groups, bool descending,
                                    const ExecContext& ctx) {
  if (b == nullptr) return Status::InvalidArgument("refinesort: null input");
  if (order != nullptr && order->type() != PhysType::kOid) {
    return Status::TypeMismatch("refinesort: order must be bat[:oid]");
  }
  const size_t n = order != nullptr ? order->Count() : b->Count();
  if (tie_groups != nullptr) {
    if (tie_groups->type() != PhysType::kOid) {
      return Status::TypeMismatch("refinesort: tie groups must be bat[:oid]");
    }
    if (tie_groups->Count() != n) {
      return Status::InvalidArgument(
          "refinesort: tie groups not aligned with order");
    }
  }

  BatPtr base = b;
  if (b->IsDenseTail()) {
    base = b->Clone();
    base->MaterializeDense();
  }
  const Oid hseq = base->hseqbase();
  const size_t vcount = base->Count();

  // Current positions into `base`, in incoming order.
  std::vector<uint32_t> pos(n);
  if (order == nullptr) {
    for (size_t i = 0; i < n; ++i) pos[i] = static_cast<uint32_t>(i);
  } else {
    CandidateReader cr(order.get(), base.get());
    Status st = ctx.ParallelFor(
        n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
          for (size_t i = begin; i < end; ++i) {
            const size_t p = cr.PositionAt(i);
            if (p >= vcount) {
              return Status::OutOfRange("refinesort: oid beyond sort column");
            }
            pos[i] = static_cast<uint32_t>(p);
          }
          return Status::OK();
        });
    MAMMOTH_RETURN_IF_ERROR(st);
  }

  // Tie-group starts from the (non-decreasing) incoming ids. A dense id
  // BAT means every row is already its own group.
  std::vector<size_t> starts;
  starts.push_back(0);
  if (tie_groups != nullptr && n > 1) {
    if (tie_groups->IsDenseTail()) {
      for (size_t i = 1; i < n; ++i) starts.push_back(i);
    } else {
      const Oid* g = tie_groups->TailData<Oid>();
      for (size_t i = 1; i < n; ++i) {
        if (g[i] != g[i - 1]) starts.push_back(i);
      }
    }
  }
  starts.push_back(n);
  const size_t ngin = starts.size() - 1;

  std::vector<uint32_t> ids;
  size_t ngroups = 0;
  if (base->type() == PhysType::kStr) {
    const uint64_t* offs = base->TailData<uint64_t>();
    const StringHeap& heap = *base->heap();
    auto less = [&heap, offs, descending](uint32_t a, uint32_t b2) {
      return descending ? heap.Get(offs[b2]) < heap.Get(offs[a])
                        : heap.Get(offs[a]) < heap.Get(offs[b2]);
    };
    auto eq = [&heap, offs](uint32_t a, uint32_t b2) {
      return heap.Get(offs[a]) == heap.Get(offs[b2]);
    };
    RefineOrder(&pos, starts, ctx, less);
    ngroups = RefineGroups(pos, starts, ctx, eq, &ids);
  } else {
    DispatchNumeric(base->type(), [&](auto tag) {
      using T = typename decltype(tag)::type;
      const T* v = base->TailData<T>();
      bool radixed = false;
      if constexpr (std::is_integral_v<T> && sizeof(T) >= 4) {
        // First ordering key over the identity: take the radix path.
        if (order == nullptr && ngin == 1 && n > 1) {
          RadixSortPerm(v, n, descending, ctx, &pos);
          radixed = true;
        }
      }
      auto less = [v, descending](uint32_t a, uint32_t b2) {
        return descending ? v[b2] < v[a] : v[a] < v[b2];
      };
      auto eq = [v](uint32_t a, uint32_t b2) { return v[a] == v[b2]; };
      if (!radixed) RefineOrder(&pos, starts, ctx, less);
      ngroups = RefineGroups(pos, starts, ctx, eq, &ids);
    });
  }

  RefineSortResult out;
  out.order = Bat::New(PhysType::kOid);
  out.order->Resize(n);
  Oid* ord = out.order->MutableTailData<Oid>();
  Status st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) ord[i] = hseq + pos[i];
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "refine order materialization cannot fail");
  out.order->mutable_props().key = true;

  out.tie_groups = Bat::New(PhysType::kOid);
  out.tie_groups->Resize(n);
  Oid* gid = out.tie_groups->MutableTailData<Oid>();
  st = ctx.ParallelFor(
      n, TaskPool::kDefaultGrain, [&](size_t begin, size_t end, int) {
        for (size_t i = begin; i < end; ++i) gid[i] = ids[i];
        return Status::OK();
      });
  MAMMOTH_CHECK(st.ok(), "tie group materialization cannot fail");
  BatProperties& gp = out.tie_groups->mutable_props();
  gp.sorted = true;
  gp.revsorted = ngroups <= 1;
  gp.key = ngroups == n;
  out.ngroups = ngroups;
  return out;
}

}  // namespace mammoth::algebra
