#ifndef MAMMOTH_CORE_GROUP_H_
#define MAMMOTH_CORE_GROUP_H_

#include "common/result.h"
#include "core/bat.h"
#include "parallel/exec_context.h"

namespace mammoth::algebra {

/// Result of a grouping step.
struct GroupResult {
  /// For every input row, the group id it belongs to (bat[:oid], aligned
  /// with the input head).
  BatPtr groups;
  /// For every group, the head OID of its first member (the group's
  /// representative row), usable to project group-by key columns.
  BatPtr extents;
  size_t ngroups = 0;
};

/// Groups `b` by tail value. When `prev` (a prior GroupResult::groups) is
/// given, refines the existing grouping instead — MonetDB's
/// group.subgroup chain, which is how multi-column GROUP BY is executed
/// column-at-a-time (§3).
///
/// Under a parallel `ctx` the hash probes run morsel-parallel into
/// per-worker local tables; a final single-threaded pass renumbers local
/// ids by first appearance in row order, so group ids and extents are
/// bit-identical to the serial kernel for any context.
Result<GroupResult> Group(
    const BatPtr& b, const BatPtr& prev = nullptr, size_t prev_ngroups = 0,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

/// Per-group aggregates. `groups` maps each row of `values` to a group id
/// in [0, ngroups); pass groups == nullptr with ngroups == 1 for a global
/// aggregate. Sums of integer tails widen to :lng, of floating tails to
/// :dbl. Empty groups yield 0 for sum/count; min/max of an empty group is
/// unspecified.
///
/// Sum (integer), count, min and max compute per-worker partials merged in
/// a single-threaded pass; these are exactly associative, so results are
/// bit-identical for any context. Floating-point sums and averages always
/// run serially to preserve the serial rounding order.
Result<BatPtr> AggrSum(
    const BatPtr& values, const BatPtr& groups, size_t ngroups,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());
Result<BatPtr> AggrCount(
    const BatPtr& groups, size_t ngroups, size_t nrows,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());
Result<BatPtr> AggrMin(
    const BatPtr& values, const BatPtr& groups, size_t ngroups,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());
Result<BatPtr> AggrMax(
    const BatPtr& values, const BatPtr& groups, size_t ngroups,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());
Result<BatPtr> AggrAvg(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups);

/// Distinct tail values of `b`, in first-appearance order.
Result<BatPtr> Distinct(
    const BatPtr& b,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_GROUP_H_
