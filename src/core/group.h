#ifndef MAMMOTH_CORE_GROUP_H_
#define MAMMOTH_CORE_GROUP_H_

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::algebra {

/// Result of a grouping step.
struct GroupResult {
  /// For every input row, the group id it belongs to (bat[:oid], aligned
  /// with the input head).
  BatPtr groups;
  /// For every group, the head OID of its first member (the group's
  /// representative row), usable to project group-by key columns.
  BatPtr extents;
  size_t ngroups = 0;
};

/// Groups `b` by tail value. When `prev` (a prior GroupResult::groups) is
/// given, refines the existing grouping instead — MonetDB's
/// group.subgroup chain, which is how multi-column GROUP BY is executed
/// column-at-a-time (§3).
Result<GroupResult> Group(const BatPtr& b, const BatPtr& prev = nullptr,
                          size_t prev_ngroups = 0);

/// Per-group aggregates. `groups` maps each row of `values` to a group id
/// in [0, ngroups); pass groups == nullptr with ngroups == 1 for a global
/// aggregate. Sums of integer tails widen to :lng, of floating tails to
/// :dbl. Empty groups yield 0 for sum/count; min/max of an empty group is
/// unspecified.
Result<BatPtr> AggrSum(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups);
Result<BatPtr> AggrCount(const BatPtr& groups, size_t ngroups, size_t nrows);
Result<BatPtr> AggrMin(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups);
Result<BatPtr> AggrMax(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups);
Result<BatPtr> AggrAvg(const BatPtr& values, const BatPtr& groups,
                       size_t ngroups);

/// Distinct tail values of `b`, in first-appearance order.
Result<BatPtr> Distinct(const BatPtr& b);

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_GROUP_H_
