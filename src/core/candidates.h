#ifndef MAMMOTH_CORE_CANDIDATES_H_
#define MAMMOTH_CORE_CANDIDATES_H_

#include "core/bat.h"

namespace mammoth {

/// Read-only view over a candidate list: the (sorted, key) OID BAT that
/// restricts which head positions of a base BAT an operator may touch.
/// A null candidate BAT means "all positions". Dense candidate lists are
/// read without materialization.
class CandidateReader {
 public:
  /// `cands` may be null. `base` provides hseqbase and the full count.
  CandidateReader(const Bat* cands, const Bat* base)
      : cands_(cands), base_hseq_(base->hseqbase()) {
    if (cands_ == nullptr) {
      mode_ = Mode::kAll;
      count_ = base->Count();
    } else if (cands_->IsDenseTail()) {
      mode_ = Mode::kDense;
      count_ = cands_->Count();
      dense_first_ = cands_->tseqbase();
    } else {
      mode_ = Mode::kArray;
      count_ = cands_->Count();
      arr_ = cands_->TailData<Oid>();
    }
  }

  size_t size() const { return count_; }

  /// Position (array index) within the base BAT of the i-th candidate.
  size_t PositionAt(size_t i) const {
    switch (mode_) {
      case Mode::kAll:
        return i;
      case Mode::kDense:
        return static_cast<size_t>(dense_first_ + i - base_hseq_);
      case Mode::kArray:
      default:
        return static_cast<size_t>(arr_[i] - base_hseq_);
    }
  }

  /// Head OID of the i-th candidate.
  Oid OidAt(size_t i) const {
    return static_cast<Oid>(PositionAt(i)) + base_hseq_;
  }

  /// True when candidates cover positions [0, base count) contiguously.
  bool IsAll() const { return mode_ == Mode::kAll; }

 private:
  enum class Mode { kAll, kDense, kArray };
  const Bat* cands_;
  Oid base_hseq_;
  Mode mode_ = Mode::kAll;
  size_t count_ = 0;
  Oid dense_first_ = 0;
  const Oid* arr_ = nullptr;
};

}  // namespace mammoth

#endif  // MAMMOTH_CORE_CANDIDATES_H_
