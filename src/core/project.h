#ifndef MAMMOTH_CORE_PROJECT_H_
#define MAMMOTH_CORE_PROJECT_H_

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::algebra {

/// Positional projection (MonetDB's leftfetchjoin / projection): for every
/// OID in `oids`, fetch the tail value of `values` at that head position.
/// This is the O(1)-per-tuple array lookup the paper credits to virtual
/// dense heads (§3).
///
/// The result's head is aligned with `oids`' head; string results share the
/// input heap.
Result<BatPtr> Project(const BatPtr& oids, const BatPtr& values);

/// Tuple reconstruction after a join: same as Project but the OID list is a
/// join-index column (§4.3 phase two, "column projection").
inline Result<BatPtr> FetchJoin(const BatPtr& oids, const BatPtr& values) {
  return Project(oids, values);
}

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_PROJECT_H_
