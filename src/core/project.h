#ifndef MAMMOTH_CORE_PROJECT_H_
#define MAMMOTH_CORE_PROJECT_H_

#include "common/result.h"
#include "core/bat.h"
#include "parallel/exec_context.h"

namespace mammoth::algebra {

/// Positional projection (MonetDB's leftfetchjoin / projection): for every
/// OID in `oids`, fetch the tail value of `values` at that head position.
/// This is the O(1)-per-tuple array lookup the paper credits to virtual
/// dense heads (§3).
///
/// The result's head is aligned with `oids`' head; string results share the
/// input heap. The gather writes disjoint output slices, so it runs
/// morsel-parallel under `ctx` with bit-identical results for any context;
/// an out-of-range OID cancels the remaining morsels and is reported as
/// OutOfRange.
Result<BatPtr> Project(
    const BatPtr& oids, const BatPtr& values,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default());

/// Tuple reconstruction after a join: same as Project but the OID list is a
/// join-index column (§4.3 phase two, "column projection").
inline Result<BatPtr> FetchJoin(
    const BatPtr& oids, const BatPtr& values,
    const parallel::ExecContext& ctx = parallel::ExecContext::Default()) {
  return Project(oids, values, ctx);
}

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_PROJECT_H_
