#ifndef MAMMOTH_CORE_SETOPS_H_
#define MAMMOTH_CORE_SETOPS_H_

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::algebra {

/// Set operations over *candidate lists* (sorted, duplicate-free bat[:oid]).
/// These are the glue of column-at-a-time predicate evaluation: disjunction
/// is a union of candidate lists, conjunction an intersection, NOT a
/// difference against the live set (§3). Dense inputs are handled without
/// materialization; results are sorted+key, and dense whenever contiguous.

/// cands_a ∪ cands_b.
Result<BatPtr> OidUnion(const BatPtr& a, const BatPtr& b);

/// cands_a ∩ cands_b.
Result<BatPtr> OidIntersect(const BatPtr& a, const BatPtr& b);

/// cands_a \ cands_b.
Result<BatPtr> OidDiff(const BatPtr& a, const BatPtr& b);

/// Head OIDs of `l` whose tail value appears in `r`'s tail (semijoin).
Result<BatPtr> SemiJoin(const BatPtr& l, const BatPtr& r);

/// Head OIDs of `l` whose tail value does NOT appear in `r`'s tail.
Result<BatPtr> AntiJoin(const BatPtr& l, const BatPtr& r);

}  // namespace mammoth::algebra

#endif  // MAMMOTH_CORE_SETOPS_H_
