#include "recycle/recycler.h"

#include <algorithm>

#include "common/rng.h"

namespace mammoth::recycle {

const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kLru:
      return "lru";
    case Policy::kBenefit:
      return "benefit";
    case Policy::kRandom:
      return "random";
  }
  return "?";
}

size_t Recycler::EntryBytes(const Entry& e, size_t* compressed_bytes) const {
  size_t bytes = 64;  // bookkeeping overhead
  size_t comp = 0;
  for (const CachedVal& v : e.outputs) {
    if (v.cbat != nullptr) {
      // Compressed-backed value: the compressed image is the real cost;
      // charging it (not the logical width) lets proportionally more
      // compressed intermediates fit in the same budget.
      comp += v.cbat->CompressedBytes();
    } else if (v.bat != nullptr) {
      bytes += v.bat->PayloadBytes();
    }
  }
  *compressed_bytes = comp;
  return bytes + comp;
}

bool Recycler::Lookup(uint64_t sig, std::vector<CachedVal>* outputs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(sig);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  it->second.last_used = ++tick_;
  it->second.hits += 1;
  ++stats_.hits;
  stats_.seconds_saved += it->second.cost_seconds;
  *outputs = it->second.outputs;
  return true;
}

void Recycler::Insert(uint64_t sig, std::vector<CachedVal> outputs,
                      double cost_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(sig) > 0) return;
  Entry e;
  e.outputs = std::move(outputs);
  e.cost_seconds = cost_seconds;
  e.bytes = EntryBytes(e, &e.compressed_bytes);
  e.last_used = ++tick_;
  if (e.bytes > capacity_bytes_) return;  // too large to ever cache
  EvictUntilFits(e.bytes);
  used_bytes_ += e.bytes;
  used_compressed_bytes_ += e.compressed_bytes;
  entries_.emplace(sig, std::move(e));
  stats_.entries = entries_.size();
  stats_.bytes = used_bytes_;
  stats_.compressed_bytes = used_compressed_bytes_;
}

// Requires mu_ held (called from Insert).
void Recycler::EvictUntilFits(size_t incoming_bytes) {
  while (used_bytes_ + incoming_bytes > capacity_bytes_ && !entries_.empty()) {
    auto victim = entries_.begin();
    switch (policy_) {
      case Policy::kLru:
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->second.last_used < victim->second.last_used) victim = it;
        }
        break;
      case Policy::kBenefit: {
        // Evict the entry with the least saved-time-per-byte potential.
        auto score = [](const Entry& e) {
          return e.cost_seconds * static_cast<double>(e.hits + 1) /
                 static_cast<double>(e.bytes);
        };
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (score(it->second) < score(victim->second)) victim = it;
        }
        break;
      }
      case Policy::kRandom: {
        size_t skip = rng_.Uniform(entries_.size());
        victim = entries_.begin();
        std::advance(victim, skip);
        break;
      }
    }
    // Drop any range registration pointing at the victim.
    for (auto& [base, vec] : ranges_) {
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [&](const RangeEntry& r) {
                                 return r.sig == victim->first;
                               }),
                vec.end());
    }
    used_bytes_ -= victim->second.bytes;
    used_compressed_bytes_ -= victim->second.compressed_bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
  stats_.bytes = used_bytes_;
  stats_.compressed_bytes = used_compressed_bytes_;
}

void Recycler::RegisterRange(uint64_t base_sig, double lo, double hi,
                             uint64_t sig) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(sig) == 0) return;  // only index entries we hold
  ranges_[base_sig].push_back({lo, hi, sig});
}

bool Recycler::LookupRangeSuperset(uint64_t base_sig, double lo, double hi,
                                   BatPtr* cands) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ranges_.find(base_sig);
  if (it == ranges_.end()) return false;
  const RangeEntry* best = nullptr;
  double best_width = 0;
  for (const RangeEntry& r : it->second) {
    if (r.lo <= lo && hi <= r.hi && entries_.count(r.sig) > 0) {
      const double width = r.hi - r.lo;
      if (best == nullptr || width < best_width) {
        best = &r;
        best_width = width;
      }
    }
  }
  if (best == nullptr) return false;
  Entry& e = entries_[best->sig];
  e.last_used = ++tick_;
  e.hits += 1;
  ++stats_.subsumption_hits;
  *cands = e.outputs[0].bat;
  return true;
}

void Recycler::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  ranges_.clear();
  used_bytes_ = 0;
  used_compressed_bytes_ = 0;
  stats_.entries = 0;
  stats_.bytes = 0;
  stats_.compressed_bytes = 0;
}

}  // namespace mammoth::recycle
