#ifndef MAMMOTH_RECYCLE_RECYCLER_H_
#define MAMMOTH_RECYCLE_RECYCLER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "compress/compressed_bat.h"
#include "core/bat.h"
#include "core/value.h"

namespace mammoth::recycle {

/// A cached runtime value: MAL instructions produce BATs and scalars. When
/// the value is a pass-through of a compressed column image, `cbat` carries
/// it so a cache hit restores the compressed-execution fast path; admission
/// then charges the *compressed* footprint (the decoded BAT is either an
/// empty stub or shared with the column's cache and costs nothing extra).
struct CachedVal {
  BatPtr bat;
  std::shared_ptr<const compress::CompressedBat> cbat;
  Value scalar;
};

/// Cache replacement policies (§6.1: "traditional cache replacement
/// policies can be applied to avoid double work").
enum class Policy : uint8_t { kLru, kBenefit, kRandom };

const char* PolicyName(Policy p);

/// The Recycler ([19], §6.1): a cache of materialized intermediates keyed
/// by instruction signature. The operator-at-a-time paradigm materializes
/// every intermediate anyway, which "provides a hook for easier
/// materialized view capturing" — the recycler simply keeps them, aware of
/// their lineage, and serves repeated (sub)queries from the cache.
///
/// Beyond exact matches it supports *subsumption* for range selects: a
/// cached select over a wider range answers a narrower one by re-selecting
/// within the cached candidate list.
///
/// Thread-safe: all operations take an internal mutex, so one recycler may
/// serve concurrent sessions (cached BATs are immutable once inserted, so
/// sharing the BatPtrs across threads is safe).
class Recycler {
 public:
  explicit Recycler(size_t capacity_bytes, Policy policy = Policy::kLru)
      : capacity_bytes_(capacity_bytes), policy_(policy) {}

  /// Exact-match lookup. On hit fills `outputs` and returns true.
  bool Lookup(uint64_t sig, std::vector<CachedVal>* outputs);

  /// Caches the outputs of the instruction with this signature.
  /// `cost_seconds` is the measured execution time (the benefit policy
  /// weighs it).
  void Insert(uint64_t sig, std::vector<CachedVal> outputs,
              double cost_seconds);

  /// Registers a cached inclusive range-select [lo, hi] over the input
  /// identified by `base_sig`, so narrower ranges can subsume from it.
  void RegisterRange(uint64_t base_sig, double lo, double hi, uint64_t sig);

  /// Finds a cached range select over `base_sig` whose [lo', hi'] covers
  /// [lo, hi]. On success returns the cached candidate OID BAT.
  bool LookupRangeSuperset(uint64_t base_sig, double lo, double hi,
                           BatPtr* cands);

  /// Drops everything (e.g. after updates invalidate the workload).
  void Clear();

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t subsumption_hits = 0;
    size_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t compressed_bytes = 0;  ///< portion of `bytes` held compressed
    double seconds_saved = 0;     ///< sum of cached costs served from cache
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  size_t capacity_bytes() const { return capacity_bytes_; }
  Policy policy() const { return policy_; }

 private:
  struct Entry {
    std::vector<CachedVal> outputs;
    double cost_seconds = 0;
    size_t bytes = 0;
    size_t compressed_bytes = 0;
    size_t hits = 0;
    uint64_t last_used = 0;
  };

  size_t EntryBytes(const Entry& e, size_t* compressed_bytes) const;
  void EvictUntilFits(size_t incoming_bytes);

  size_t capacity_bytes_;
  Policy policy_;

  /// Guards everything below (entries, ranges, stats, rng).
  mutable std::mutex mu_;
  Rng rng_{0xdecaf};  ///< kRandom eviction draws
  uint64_t tick_ = 0;
  size_t used_bytes_ = 0;
  size_t used_compressed_bytes_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;

  struct RangeEntry {
    double lo, hi;
    uint64_t sig;
  };
  std::unordered_map<uint64_t, std::vector<RangeEntry>> ranges_;

  Stats stats_;
};

}  // namespace mammoth::recycle

#endif  // MAMMOTH_RECYCLE_RECYCLER_H_
