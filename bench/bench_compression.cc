// E8 (§5, [44]): light-weight vectorized compression. Reported series:
//   - decompression speed in CPU cycles per value (claim: < 5 cycles/value
//     for PFOR-family codecs on compressible data);
//   - compression ratios per codec and data distribution;
//   - compressed-scan vs raw-scan under a simulated disk-bandwidth cap
//     (compression turns I/O-bound scans CPU-bound).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "compress/compressed_bat.h"
#include "compress/compressed_kernels.h"
#include "compress/dict_str.h"
#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/rle.h"
#include "core/group.h"
#include "core/select.h"
#include "core/table.h"
#include "parallel/exec_context.h"
#include "parallel/task_pool.h"
#include "scan/shared_scan.h"
#include "sql/engine.h"
#include "vector/pipeline.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kValues = 4 << 20;

std::vector<int32_t> SmallRangeData() {
  BatPtr b = bench::UniformInt32(kValues, 1 << 10, 41);
  return std::vector<int32_t>(b->TailData<int32_t>(),
                              b->TailData<int32_t>() + kValues);
}

std::vector<int32_t> SortedData() {
  BatPtr b = bench::SortedInt32(kValues, 42);
  return std::vector<int32_t>(b->TailData<int32_t>(),
                              b->TailData<int32_t>() + kValues);
}

std::vector<int32_t> LowCardinalityData() {
  BatPtr b = bench::UniformInt32(kValues, 64, 43);
  return std::vector<int32_t>(b->TailData<int32_t>(),
                              b->TailData<int32_t>() + kValues);
}

template <typename EncodeFn, typename DecodeFn>
void RunCodec(benchmark::State& state, const std::vector<int32_t>& data,
              EncodeFn encode, DecodeFn decode) {
  std::vector<uint8_t> buf;
  if (!encode(data.data(), data.size(), &buf).ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  std::vector<int32_t> out;
  uint64_t cycles = 0;
  size_t rounds = 0;
  for (auto _ : state) {
    const uint64_t c0 = ReadCycleCounter();
    if (!decode(buf, &out).ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    cycles += ReadCycleCounter() - c0;
    ++rounds;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.counters["cycles_per_value"] =
      static_cast<double>(cycles) /
      (static_cast<double>(rounds) * static_cast<double>(data.size()));
  state.counters["ratio"] = static_cast<double>(data.size() * 4) /
                            static_cast<double>(buf.size());
}

void BM_PforDecodeSmallRange(benchmark::State& state) {
  RunCodec(state, SmallRangeData(), compress::PforEncode,
           compress::PforDecode);
}
BENCHMARK(BM_PforDecodeSmallRange)->Unit(benchmark::kMillisecond);

void BM_PforDeltaDecodeSorted(benchmark::State& state) {
  RunCodec(state, SortedData(), compress::PforDeltaEncode,
           compress::PforDeltaDecode);
}
BENCHMARK(BM_PforDeltaDecodeSorted)->Unit(benchmark::kMillisecond);

void BM_PdictDecodeLowCardinality(benchmark::State& state) {
  RunCodec(state, LowCardinalityData(), compress::PdictEncode,
           compress::PdictDecode);
}
BENCHMARK(BM_PdictDecodeLowCardinality)->Unit(benchmark::kMillisecond);

void BM_RleDecodeSorted(benchmark::State& state) {
  RunCodec(state, SortedData(), compress::RleEncode, compress::RleDecode);
}
BENCHMARK(BM_RleDecodeSorted)->Unit(benchmark::kMillisecond);

// Baseline: plain memcpy of the uncompressed column (the "decompression"
// cost of storing raw data).
void BM_MemcpyBaseline(benchmark::State& state) {
  const auto data = SmallRangeData();
  std::vector<int32_t> out(data.size());
  uint64_t cycles = 0;
  size_t rounds = 0;
  for (auto _ : state) {
    const uint64_t c0 = ReadCycleCounter();
    std::memcpy(out.data(), data.data(), data.size() * 4);
    cycles += ReadCycleCounter() - c0;
    ++rounds;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.counters["cycles_per_value"] =
      static_cast<double>(cycles) /
      (static_cast<double>(rounds) * static_cast<double>(data.size()));
  state.counters["ratio"] = 1.0;
}
BENCHMARK(BM_MemcpyBaseline)->Unit(benchmark::kMillisecond);

// Simulated bandwidth-capped scan (X100's disk scenario): a scan may move
// at most `bw` bytes/sec from "disk". Compressed scans move fewer bytes and
// spend CPU decompressing; raw scans are I/O bound.
void ScanUnderBandwidth(benchmark::State& state, bool compressed) {
  const double bw = 500e6;  // 500 MB/s simulated sequential disk
  const auto data = SmallRangeData();
  std::vector<uint8_t> buf;
  benchmark::DoNotOptimize(
      compress::PforEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> out;
  for (auto _ : state) {
    const size_t io_bytes = compressed ? buf.size() : data.size() * 4;
    const double io_seconds = static_cast<double>(io_bytes) / bw;
    // Charge the simulated I/O time.
    WallTimer timer;
    int64_t sum = 0;
    if (compressed) {
      benchmark::DoNotOptimize(compress::PforDecode(buf, &out).ok());
      for (int32_t v : out) sum += v;
    } else {
      for (int32_t v : data) sum += v;
    }
    benchmark::DoNotOptimize(sum);
    const double cpu = timer.ElapsedSeconds();
    // Effective time: I/O and CPU overlap; the slower dominates.
    state.SetIterationTime(std::max(io_seconds, cpu));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
void BM_BandwidthCappedScanRaw(benchmark::State& state) {
  ScanUnderBandwidth(state, false);
}
void BM_BandwidthCappedScanPfor(benchmark::State& state) {
  ScanUnderBandwidth(state, true);
}
BENCHMARK(BM_BandwidthCappedScanRaw)->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BandwidthCappedScanPfor)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// In-memory CPU cost of the compressed *vectorized* scan (§5): the
// pipeline decompresses PFOR blocks into cache-resident vectors right
// before aggregating. Compare against the plain-BAT pipeline to see the
// decompression overhead a disk-based system would happily pay.
void CompressedPipelineScan(benchmark::State& state, bool compressed) {
  const auto data = SmallRangeData();
  BatPtr column = Bat::New(PhysType::kInt32);
  column->AppendRaw(data.data(), data.size());
  auto cb = compress::CompressedBat::Compress(column,
                                              compress::Codec::kPfor);
  if (!cb.ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  for (auto _ : state) {
    vec::Pipeline p(
        compressed
            ? std::vector<vec::PipelineColumn>{&*cb}
            : std::vector<vec::PipelineColumn>{column},
        1024);
    benchmark::DoNotOptimize(
        p.SetAggregate(vec::Pipeline::kNoGroup, 1,
                       {{vec::AggFn::kSum, 0}})
            .ok());
    auto r = p.Run();
    benchmark::DoNotOptimize(r->aggregates.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.counters["ratio"] = cb->Ratio();
}
void BM_VectorizedScanPlain(benchmark::State& state) {
  CompressedPipelineScan(state, false);
}
void BM_VectorizedScanPforBlocks(benchmark::State& state) {
  CompressedPipelineScan(state, true);
}
BENCHMARK(BM_VectorizedScanPlain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VectorizedScanPforBlocks)->Unit(benchmark::kMillisecond);

// ------------------------------------------- operate-on-compressed sweep --
// Direct kernels against decode-then-kernel over the *same* compressed
// image (§13): RLE aggregates fold value*run in O(runs), RLE/PDICT
// selects and dictionary string predicates evaluate in code space. The
// decode variants pay a fresh Decode() per iteration — exactly what the
// fallback path pays when a kernel reports unsupported. `bytes_touched`
// is the physical footprint each variant reads: codec bytes for direct,
// logical tail bytes for decode-then-kernel.

constexpr size_t kSweepRows = 4 << 20;

BatPtr RunHeavyColumn() {
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(kSweepRows);
  int32_t* p = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < kSweepRows; ++i) {
    p[i] = static_cast<int32_t>((i / 1000) % 100);  // runs of 1000
  }
  return b;
}

BatPtr LowCardColumn() {
  BatPtr b = bench::UniformInt32(kSweepRows, 64, 47);
  return b;
}

void DirectAggr(benchmark::State& state, bool direct) {
  auto comp = compress::CompressedBat::Compress(RunHeavyColumn(),
                                                compress::Codec::kRle);
  if (!comp.ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  for (auto _ : state) {
    if (direct) {
      auto r = compress::CompressedAggrSum(*comp);
      benchmark::DoNotOptimize(r->get());
    } else {
      auto plain = comp->Decode();  // the fallback's per-use decode
      auto r = algebra::AggrSum(*plain, nullptr, 1,
                                parallel::ExecContext::Serial());
      benchmark::DoNotOptimize(r->get());
    }
  }
  state.SetItemsProcessed(state.iterations() * kSweepRows);
  state.counters["bytes_touched"] = static_cast<double>(
      direct ? comp->CompressedBytes() : comp->LogicalBytes());
}
void BM_AggrSumRleDirect(benchmark::State& state) { DirectAggr(state, true); }
void BM_AggrSumRleDecodeThenKernel(benchmark::State& state) {
  DirectAggr(state, false);
}
BENCHMARK(BM_AggrSumRleDirect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AggrSumRleDecodeThenKernel)->Unit(benchmark::kMillisecond);

void DirectSelect(benchmark::State& state, compress::Codec codec,
                  bool direct) {
  BatPtr column =
      codec == compress::Codec::kRle ? RunHeavyColumn() : LowCardColumn();
  auto comp = compress::CompressedBat::Compress(column, codec);
  if (!comp.ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  const Value v = Value::Int(37);
  if (!compress::ThetaSelectableOnCompressed(*comp, v, CmpOp::kEq)) {
    state.SkipWithError("not eligible");
    return;
  }
  for (auto _ : state) {
    if (direct) {
      auto r = compress::CompressedThetaSelectRange(*comp, v, CmpOp::kEq, 0,
                                                    comp->Count(), 0);
      benchmark::DoNotOptimize(r->get());
    } else {
      auto plain = comp->Decode();
      auto r = algebra::ThetaSelect(*plain, nullptr, v, CmpOp::kEq,
                                    parallel::ExecContext::Serial());
      benchmark::DoNotOptimize(r->get());
    }
  }
  state.SetItemsProcessed(state.iterations() * kSweepRows);
  state.counters["bytes_touched"] = static_cast<double>(
      direct ? comp->CompressedBytes() : comp->LogicalBytes());
}
void BM_SelectEqRleDirect(benchmark::State& state) {
  DirectSelect(state, compress::Codec::kRle, true);
}
void BM_SelectEqRleDecodeThenKernel(benchmark::State& state) {
  DirectSelect(state, compress::Codec::kRle, false);
}
void BM_SelectEqPdictDirect(benchmark::State& state) {
  DirectSelect(state, compress::Codec::kPdict, true);
}
void BM_SelectEqPdictDecodeThenKernel(benchmark::State& state) {
  DirectSelect(state, compress::Codec::kPdict, false);
}
BENCHMARK(BM_SelectEqRleDirect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectEqRleDecodeThenKernel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectEqPdictDirect)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SelectEqPdictDecodeThenKernel)->Unit(benchmark::kMillisecond);

// Dictionary string predicates vs the stock string kernel on the plain
// column (already materialized — the dict variant wins on code width, not
// on skipped decode).
void DictStrSelect(benchmark::State& state, CmpOp op, const char* pattern,
                   bool dict_path) {
  constexpr size_t kStrRows = 1 << 20;
  BatPtr plain = Bat::NewString(nullptr);
  Rng rng(48);
  for (size_t i = 0; i < kStrRows; ++i) {
    plain->AppendString("tag_" + std::to_string(rng.Uniform(200)));
  }
  auto dict = compress::StrDict::Encode(plain);
  if (!dict.ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  const Value v = Value::Str(pattern);
  for (auto _ : state) {
    if (dict_path) {
      auto r = compress::DictStrSelectRange(*dict, v, op, 0, kStrRows, 0);
      benchmark::DoNotOptimize(r->get());
    } else {
      auto r = algebra::ThetaSelect(plain, nullptr, v, op,
                                    parallel::ExecContext::Serial());
      benchmark::DoNotOptimize(r->get());
    }
  }
  state.SetItemsProcessed(state.iterations() * kStrRows);
  state.counters["bytes_touched"] = static_cast<double>(
      dict_path ? dict->CompressedBytes() : dict->LogicalBytes());
}
void BM_StrSelectEqDict(benchmark::State& state) {
  DictStrSelect(state, CmpOp::kEq, "tag_42", true);
}
void BM_StrSelectEqPlainKernel(benchmark::State& state) {
  DictStrSelect(state, CmpOp::kEq, "tag_42", false);
}
void BM_StrSelectLikePrefixDict(benchmark::State& state) {
  DictStrSelect(state, CmpOp::kLike, "tag_1%", true);
}
void BM_StrSelectLikePrefixPlainKernel(benchmark::State& state) {
  DictStrSelect(state, CmpOp::kLike, "tag_1%", false);
}
BENCHMARK(BM_StrSelectEqDict)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StrSelectEqPlainKernel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StrSelectLikePrefixDict)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StrSelectLikePrefixPlainKernel)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------- end-to-end --
// Compression as an execution path, measured through the whole engine:
// 8 closed-loop sessions each run 4 queries (a 32-scan mix over four
// columns with different codec affinities) against one sql::Engine with
// a SharedScanScheduler attached — once over plain storage, once after
// ALTER TABLE ... COMPRESS. Counters report the physical work per query:
// bytes_per_query (chunk-load bytes: tail bytes when plain, pro-rated
// codec bytes when compressed) and loads_per_query (driven chunk loads
// plus direct passes), so the compressed variant's byte reduction is the
// end-to-end I/O win. MAMMOTH_BENCH_ROWS overrides the table size
// (default 32 chunks of 64Ki rows).

constexpr size_t kMixChunkRows = size_t{1} << 16;

size_t MixRows() {
  const char* env = std::getenv("MAMMOTH_BENCH_ROWS");
  return env != nullptr ? std::strtoull(env, nullptr, 10)
                        : 32 * kMixChunkRows + 777;
}

// Fresh per variant: ALTER TABLE COMPRESS rewrites storage in place, so
// the raw and compressed runs must not share a TablePtr.
TablePtr MixTable() {
  const size_t nrows = MixRows();
  BatPtr id = Bat::New(PhysType::kInt32);
  BatPtr val = Bat::New(PhysType::kInt32);
  BatPtr tag = Bat::New(PhysType::kInt32);
  BatPtr big = Bat::New(PhysType::kInt64);
  id->Resize(nrows);
  val->Resize(nrows);
  tag->Resize(nrows);
  big->Resize(nrows);
  int32_t* idp = id->MutableTailData<int32_t>();
  int32_t* vp = val->MutableTailData<int32_t>();
  int32_t* tp = tag->MutableTailData<int32_t>();
  int64_t* bp = big->MutableTailData<int64_t>();
  Rng rng(20260807);
  for (size_t i = 0; i < nrows; ++i) {
    idp[i] = static_cast<int32_t>(i);                     // sorted: PFOR-DELTA
    vp[i] = static_cast<int32_t>(rng.Uniform(10000));     // small range: PFOR
    tp[i] = static_cast<int32_t>(i / 1000);               // runs: RLE
    bp[i] = (int64_t{1} << 34) +
            static_cast<int64_t>(rng.Uniform(512));       // wide, clustered
  }
  auto t = Table::FromColumns("events",
                              {{"id", PhysType::kInt32},
                               {"val", PhysType::kInt32},
                               {"tag", PhysType::kInt32},
                               {"big", PhysType::kInt64}},
                              {id, val, tag, big});
  if (!t.ok()) std::abort();
  return *t;
}

// Overlapping aggregates over all four columns; single-row results keep
// the scan (not the wire) as the measured cost.
std::string MixQuery(int i, size_t nrows) {
  switch (i % 4) {
    case 0: {
      const int lo = 250 * (i % 3);
      return "SELECT COUNT(*), SUM(val) FROM events WHERE val >= " +
             std::to_string(lo) + " AND val <= " + std::to_string(lo + 8500);
    }
    case 1:
      return "SELECT COUNT(*), SUM(tag) FROM events WHERE tag >= 0 AND "
             "tag <= " +
             std::to_string(nrows / 1000);
    case 2:
      return "SELECT COUNT(*), SUM(id) FROM events WHERE id >= 0 AND id <= " +
             std::to_string(nrows);
    case 3:
      return "SELECT COUNT(*) FROM events WHERE big >= 17179869184 AND "
             "big <= 17179869600";
  }
  return "";
}

void EndToEndScanMix(benchmark::State& state, bool compressed) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 4;  // 8 x 4 = the 32-scan mix

  sql::Engine engine;
  if (!engine.catalog()->Register(MixTable()).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  if (compressed &&
      !engine.Execute("ALTER TABLE events COMPRESS").ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  scan::SharedScanConfig cfg;
  cfg.chunk_rows = kMixChunkRows;
  cfg.min_share_rows = kMixChunkRows;
  scan::SharedScanScheduler sched(cfg);
  engine.AttachSharedScans(&sched);
  parallel::TaskPool pool(parallel::DefaultThreadCount());
  parallel::ExecContext ctx(&pool);
  const size_t nrows = MixRows();

  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  uint64_t bytes = 0;
  uint64_t loads = 0;
  for (auto _ : state) {
    const scan::SharedScanStats before = sched.stats();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int q = 0; q < kQueriesPerThread; ++q) {
          if (!engine.Execute(MixQuery(t + q, nrows), ctx).ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    total_queries += kThreads * kQueriesPerThread;
    const scan::SharedScanStats after = sched.stats();
    bytes += after.bytes_loaded - before.bytes_loaded;
    loads += (after.chunks_loaded - before.chunks_loaded) +
             (after.chunks_direct - before.chunks_direct);
  }
  if (failed.load()) state.SkipWithError("query failed");

  const double queries = static_cast<double>(total_queries);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["bytes_per_query"] =
      total_queries == 0 ? 0.0 : static_cast<double>(bytes) / queries;
  state.counters["loads_per_query"] =
      total_queries == 0 ? 0.0 : static_cast<double>(loads) / queries;
  const auto cs = engine.compression_stats();
  state.counters["storage_ratio"] =
      cs.compressed_bytes == 0
          ? 1.0
          : static_cast<double>(cs.logical_bytes) /
                static_cast<double>(cs.compressed_bytes);
}

void BM_EndToEndScanMixRaw(benchmark::State& state) {
  EndToEndScanMix(state, false);
}
void BM_EndToEndScanMixCompressed(benchmark::State& state) {
  EndToEndScanMix(state, true);
}
BENCHMARK(BM_EndToEndScanMixRaw)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EndToEndScanMixCompressed)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
