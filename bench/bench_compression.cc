// E8 (§5, [44]): light-weight vectorized compression. Reported series:
//   - decompression speed in CPU cycles per value (claim: < 5 cycles/value
//     for PFOR-family codecs on compressible data);
//   - compression ratios per codec and data distribution;
//   - compressed-scan vs raw-scan under a simulated disk-bandwidth cap
//     (compression turns I/O-bound scans CPU-bound).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>

#include "common/timer.h"
#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/compressed_bat.h"
#include "compress/rle.h"
#include "vector/pipeline.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kValues = 4 << 20;

std::vector<int32_t> SmallRangeData() {
  BatPtr b = bench::UniformInt32(kValues, 1 << 10, 41);
  return std::vector<int32_t>(b->TailData<int32_t>(),
                              b->TailData<int32_t>() + kValues);
}

std::vector<int32_t> SortedData() {
  BatPtr b = bench::SortedInt32(kValues, 42);
  return std::vector<int32_t>(b->TailData<int32_t>(),
                              b->TailData<int32_t>() + kValues);
}

std::vector<int32_t> LowCardinalityData() {
  BatPtr b = bench::UniformInt32(kValues, 64, 43);
  return std::vector<int32_t>(b->TailData<int32_t>(),
                              b->TailData<int32_t>() + kValues);
}

template <typename EncodeFn, typename DecodeFn>
void RunCodec(benchmark::State& state, const std::vector<int32_t>& data,
              EncodeFn encode, DecodeFn decode) {
  std::vector<uint8_t> buf;
  if (!encode(data.data(), data.size(), &buf).ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  std::vector<int32_t> out;
  uint64_t cycles = 0;
  size_t rounds = 0;
  for (auto _ : state) {
    const uint64_t c0 = ReadCycleCounter();
    if (!decode(buf, &out).ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    cycles += ReadCycleCounter() - c0;
    ++rounds;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.counters["cycles_per_value"] =
      static_cast<double>(cycles) /
      (static_cast<double>(rounds) * static_cast<double>(data.size()));
  state.counters["ratio"] = static_cast<double>(data.size() * 4) /
                            static_cast<double>(buf.size());
}

void BM_PforDecodeSmallRange(benchmark::State& state) {
  RunCodec(state, SmallRangeData(), compress::PforEncode,
           compress::PforDecode);
}
BENCHMARK(BM_PforDecodeSmallRange)->Unit(benchmark::kMillisecond);

void BM_PforDeltaDecodeSorted(benchmark::State& state) {
  RunCodec(state, SortedData(), compress::PforDeltaEncode,
           compress::PforDeltaDecode);
}
BENCHMARK(BM_PforDeltaDecodeSorted)->Unit(benchmark::kMillisecond);

void BM_PdictDecodeLowCardinality(benchmark::State& state) {
  RunCodec(state, LowCardinalityData(), compress::PdictEncode,
           compress::PdictDecode);
}
BENCHMARK(BM_PdictDecodeLowCardinality)->Unit(benchmark::kMillisecond);

void BM_RleDecodeSorted(benchmark::State& state) {
  RunCodec(state, SortedData(), compress::RleEncode, compress::RleDecode);
}
BENCHMARK(BM_RleDecodeSorted)->Unit(benchmark::kMillisecond);

// Baseline: plain memcpy of the uncompressed column (the "decompression"
// cost of storing raw data).
void BM_MemcpyBaseline(benchmark::State& state) {
  const auto data = SmallRangeData();
  std::vector<int32_t> out(data.size());
  uint64_t cycles = 0;
  size_t rounds = 0;
  for (auto _ : state) {
    const uint64_t c0 = ReadCycleCounter();
    std::memcpy(out.data(), data.data(), data.size() * 4);
    cycles += ReadCycleCounter() - c0;
    ++rounds;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.counters["cycles_per_value"] =
      static_cast<double>(cycles) /
      (static_cast<double>(rounds) * static_cast<double>(data.size()));
  state.counters["ratio"] = 1.0;
}
BENCHMARK(BM_MemcpyBaseline)->Unit(benchmark::kMillisecond);

// Simulated bandwidth-capped scan (X100's disk scenario): a scan may move
// at most `bw` bytes/sec from "disk". Compressed scans move fewer bytes and
// spend CPU decompressing; raw scans are I/O bound.
void ScanUnderBandwidth(benchmark::State& state, bool compressed) {
  const double bw = 500e6;  // 500 MB/s simulated sequential disk
  const auto data = SmallRangeData();
  std::vector<uint8_t> buf;
  benchmark::DoNotOptimize(
      compress::PforEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> out;
  for (auto _ : state) {
    const size_t io_bytes = compressed ? buf.size() : data.size() * 4;
    const double io_seconds = static_cast<double>(io_bytes) / bw;
    // Charge the simulated I/O time.
    WallTimer timer;
    int64_t sum = 0;
    if (compressed) {
      benchmark::DoNotOptimize(compress::PforDecode(buf, &out).ok());
      for (int32_t v : out) sum += v;
    } else {
      for (int32_t v : data) sum += v;
    }
    benchmark::DoNotOptimize(sum);
    const double cpu = timer.ElapsedSeconds();
    // Effective time: I/O and CPU overlap; the slower dominates.
    state.SetIterationTime(std::max(io_seconds, cpu));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
void BM_BandwidthCappedScanRaw(benchmark::State& state) {
  ScanUnderBandwidth(state, false);
}
void BM_BandwidthCappedScanPfor(benchmark::State& state) {
  ScanUnderBandwidth(state, true);
}
BENCHMARK(BM_BandwidthCappedScanRaw)->UseManualTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BandwidthCappedScanPfor)->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// In-memory CPU cost of the compressed *vectorized* scan (§5): the
// pipeline decompresses PFOR blocks into cache-resident vectors right
// before aggregating. Compare against the plain-BAT pipeline to see the
// decompression overhead a disk-based system would happily pay.
void CompressedPipelineScan(benchmark::State& state, bool compressed) {
  const auto data = SmallRangeData();
  BatPtr column = Bat::New(PhysType::kInt32);
  column->AppendRaw(data.data(), data.size());
  auto cb = compress::CompressedBat::Compress(column,
                                              compress::Codec::kPfor);
  if (!cb.ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  for (auto _ : state) {
    vec::Pipeline p(
        compressed
            ? std::vector<vec::PipelineColumn>{&*cb}
            : std::vector<vec::PipelineColumn>{column},
        1024);
    benchmark::DoNotOptimize(
        p.SetAggregate(vec::Pipeline::kNoGroup, 1,
                       {{vec::AggFn::kSum, 0}})
            .ok());
    auto r = p.Run();
    benchmark::DoNotOptimize(r->aggregates.data());
  }
  state.SetItemsProcessed(state.iterations() * data.size());
  state.counters["ratio"] = cb->Ratio();
}
void BM_VectorizedScanPlain(benchmark::State& state) {
  CompressedPipelineScan(state, false);
}
void BM_VectorizedScanPforBlocks(benchmark::State& state) {
  CompressedPipelineScan(state, true);
}
BENCHMARK(BM_VectorizedScanPlain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VectorizedScanPforBlocks)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
