// E9 (§6.1, [22,18]): database cracking vs pay-up-front sorting vs always
// scanning, on a sequence of random range queries over a 4M-value column.
// Reported series (per strategy): total time for the query sequence,
// including any up-front preparation. Shapes to reproduce:
//   - scan: flat cost per query, no startup;
//   - full sort + binary search: large query-1 cost, cheap afterwards;
//   - cracking: no startup knob, first queries near scan cost, quickly
//     converging towards index-like cost — competitive with full sort over
//     the whole sequence, and robust under interleaved updates.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/select.h"
#include "core/sort.h"
#include "index/cracking.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 4 << 20;
constexpr int64_t kDomain = 1 << 30;
constexpr int64_t kRange = kDomain / 1000;  // ~0.1% selectivity

struct Query {
  int32_t lo, hi;
};

std::vector<Query> Queries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> qs(n);
  for (auto& q : qs) {
    q.lo = static_cast<int32_t>(rng.Uniform(kDomain - kRange));
    q.hi = q.lo + static_cast<int32_t>(kRange);
  }
  return qs;
}

// range(0) = number of queries in the sequence.
void BM_AlwaysScan(benchmark::State& state) {
  BatPtr column = bench::UniformInt32(kRows, kDomain, 61);
  const auto queries = Queries(static_cast<size_t>(state.range(0)), 62);
  for (auto _ : state) {
    size_t total = 0;
    for (const Query& q : queries) {
      auto r = algebra::RangeSelect(column, nullptr, Value::Int(q.lo),
                                    Value::Int(q.hi));
      total += (*r)->Count();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_AlwaysScan)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_FullSortFirst(benchmark::State& state) {
  BatPtr column = bench::UniformInt32(kRows, kDomain, 61);
  const auto queries = Queries(static_cast<size_t>(state.range(0)), 62);
  for (auto _ : state) {
    // Pay the full sort up front (index build), then binary-search selects.
    auto sorted = algebra::Sort(column);
    size_t total = 0;
    for (const Query& q : queries) {
      auto r = algebra::RangeSelect(sorted->sorted, nullptr,
                                    Value::Int(q.lo), Value::Int(q.hi));
      total += (*r)->Count();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_FullSortFirst)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_Cracking(benchmark::State& state) {
  BatPtr column = bench::UniformInt32(kRows, kDomain, 61);
  const auto queries = Queries(static_cast<size_t>(state.range(0)), 62);
  for (auto _ : state) {
    index::CrackerIndex<int32_t> idx(column->TailData<int32_t>(), kRows);
    size_t total = 0;
    for (const Query& q : queries) {
      total += idx.RangeSelect(q.lo, q.hi).size();
    }
    benchmark::DoNotOptimize(total);
    state.counters["pieces"] = static_cast<double>(idx.PieceCount());
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_Cracking)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Robustness under updates ([18]): every 10th query inserts a batch of new
// values; cracking absorbs them through the pending deltas.
void BM_CrackingUnderUpdates(benchmark::State& state) {
  BatPtr column = bench::UniformInt32(kRows, kDomain, 61);
  const auto queries = Queries(static_cast<size_t>(state.range(0)), 62);
  Rng rng(63);
  for (auto _ : state) {
    index::CrackerIndex<int32_t> idx(column->TailData<int32_t>(), kRows);
    size_t total = 0;
    Oid next_oid = kRows;
    size_t qi = 0;
    for (const Query& q : queries) {
      if (++qi % 10 == 0) {
        for (int u = 0; u < 100; ++u) {
          idx.Insert(static_cast<int32_t>(rng.Uniform(kDomain)), next_oid++);
        }
      }
      if (qi % 100 == 0) idx.ConsolidatePending();
      total += idx.RangeSelect(q.lo, q.hi).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
}
BENCHMARK(BM_CrackingUnderUpdates)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
