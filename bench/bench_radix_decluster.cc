// E5 (§4.3): post-projection strategies after a join. The join index holds
// a random permutation of positions; projecting k columns through it is
// the "tuple reconstruction" phase. Strategies:
//   - naive DSM post-projection: one random access per tuple per column;
//   - radix-decluster DSM post-projection: cache-bounded three-phase;
//   - NSM pre-projection: rows carried through (simulated by copying whole
//     rows from an NSM store at probe time).
// Claim: radix-decluster makes DSM post-projection the best overall.
//
// Sized to exceed the LLC (this host exposes a very large shared L3, so
// the value columns are 128M tuples = 512MB each; the naive strategy's random
// fetches then pay memory latency, which is precisely the regime [28]
// targets).

#include <benchmark/benchmark.h>

#include <numeric>

#include "common/rng.h"
#include "cost/calibrator.h"
#include "cost/model.h"
#include "join/radix_decluster.h"
#include "layout/nsm.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kValues = 128 << 20;  // 512MB per value column
constexpr size_t kProbes = 32 << 20;   // join-index entries
constexpr size_t kAllCols = 2;

const std::vector<Oid>& SharedPositions() {
  static std::vector<Oid> pos = [] {
    std::vector<Oid> p(kProbes);
    Rng rng(5);
    for (auto& x : p) x = rng.Uniform(kValues);
    return p;
  }();
  return pos;
}

const std::vector<BatPtr>& SharedColumns() {
  static std::vector<BatPtr> columns = [] {
    std::vector<BatPtr> out;
    for (size_t c = 0; c < kAllCols; ++c) {
      out.push_back(bench::UniformInt32(kValues, 1u << 30, 100 + c));
    }
    return out;
  }();
  return columns;
}

// range(0) = number of projected columns k.
void BM_DsmNaivePostProjection(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const auto& positions = SharedPositions();
  const auto& columns = SharedColumns();
  std::vector<int32_t> out(kProbes);
  for (auto _ : state) {
    for (size_t c = 0; c < k; ++c) {
      const int32_t* v = columns[c]->TailData<int32_t>();
      for (size_t i = 0; i < kProbes; ++i) out[i] = v[positions[i]];
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kProbes * k);
}
BENCHMARK(BM_DsmNaivePostProjection)->Arg(1)->Arg(2)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DsmRadixDecluster(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const auto& positions = SharedPositions();
  const auto& columns = SharedColumns();
  radix::DeclusterOptions opt;
  opt.cache_bytes = 2 << 20;  // size phases for the per-core L2
  radix::DeclusterScratch<int32_t> scratch;
  for (auto _ : state) {
    for (size_t c = 0; c < k; ++c) {
      auto out = radix::RadixDeclusterProject<int32_t>(
          positions, columns[c]->TailData<int32_t>(), kValues, opt,
          &scratch);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kProbes * k);
}
BENCHMARK(BM_DsmRadixDecluster)->Arg(1)->Arg(2)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_NsmPreProjection(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  // NSM rows always carry all candidate columns (pre-projection copies the
  // full payload through the join regardless of how many columns the query
  // needs).
  static layout::NsmStore& store = *[] {
    auto* s = new layout::NsmStore(
        layout::RowSchema(std::vector<PhysType>(kAllCols, PhysType::kInt32)));
    Rng rng(9);
    for (size_t r = 0; r < kValues; ++r) {
      int32_t row[kAllCols];
      for (size_t c = 0; c < kAllCols; ++c) {
        row[c] = static_cast<int32_t>(rng.Next());
      }
      s->AppendRow(row);
    }
    return s;
  }();
  const auto& positions = SharedPositions();
  std::vector<int32_t> out(kAllCols * 4096);
  for (auto _ : state) {
    // Rows land in window-sized output runs (the join's output buffer).
    size_t w = 0;
    for (size_t i = 0; i < kProbes; ++i) {
      store.ReadRow(positions[i], out.data() + w * kAllCols);
      if (++w == 4096) w = 0;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kProbes * k);
}
BENCHMARK(BM_NsmPreProjection)->Arg(1)->Arg(2)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Era dependence: the paper's result ([28]: decluster wins) held on
// machines with MLP ~1 and severe TLB/cache penalties. The cost model
// (§4.4) evaluated under a Pentium4-era profile reproduces that verdict;
// under this machine's calibrated profile (deep MLP, huge LLC) the naive
// gather wins — which is exactly what the measured rows above show.
void BM_EraModelVerdict(benchmark::State& state) {
  const bool paper_era = state.range(0) == 1;
  // The modern arm uses the explicit deep-MLP archetype (as the unit tests
  // do): live calibration is good enough for tuning decisions (E6) but not
  // for adjudicating a 2x strategy question on a virtualized host.
  cost::HardwareProfile modern = cost::HardwareProfile::Default();
  modern.mlp = 10.0;
  modern.levels.back().capacity_bytes = 256 << 20;
  const cost::HardwareProfile hw =
      paper_era ? cost::HardwareProfile::Pentium4Era() : modern;
  double naive_ms = 0, decluster_ms = 0;
  for (auto _ : state) {
    naive_ms =
        cost::NaiveProjectionCostNs(hw, kProbes, kValues, 4) / 1e6;
    decluster_ms =
        cost::DeclusterProjectionCostNs(hw, kProbes, kValues, 4) / 1e6;
    benchmark::DoNotOptimize(naive_ms + decluster_ms);
  }
  state.counters["model_naive_ms"] = naive_ms;
  state.counters["model_decluster_ms"] = decluster_ms;
  state.counters["decluster_wins"] = decluster_ms < naive_ms ? 1 : 0;
  state.SetLabel(paper_era ? "pentium4_era" : "modern_deep_mlp");
}
BENCHMARK(BM_EraModelVerdict)->Arg(1)->Arg(0)->Iterations(1);

}  // namespace
}  // namespace mammoth
