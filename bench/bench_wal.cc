// Durability cost (src/wal/): what a commit pays for its fsync, and what
// group commit buys back under concurrency.
//
// BM_WalCommit sweeps concurrent committers 1..32 with group commit on
// and off. Every committer drives single-row INSERTs through one durable
// sql::Engine, so the measured path is the real one: parse, delta
// append, WAL append under the exclusive lock, fsync wait after it.
// Counters: commits/s, fsyncs_per_commit (the group-commit headline —
// well below 1 with batching, ~1 without), p50/p99 commit latency.
//
// BM_WalRecovery replays a prebuilt log of single-row transactions into
// a fresh catalog and reports replay throughput in txns/s.
//
// Results land in BENCH_wal.json (see bench_main.cc).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "sql/engine.h"
#include "wal/db.h"
#include "wal/wal.h"

namespace {

using namespace mammoth;
namespace fs = std::filesystem;

std::string BenchDir(const std::string& tag) {
  return (fs::temp_directory_path() / ("mammoth_bench_wal_" + tag))
      .string();
}

void BM_WalCommit(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const bool group = state.range(1) != 0;
  constexpr int kCommitsPerWriter = 40;

  const std::string dir =
      BenchDir(std::to_string(writers) + (group ? "_g" : "_n"));
  fs::remove_all(dir);
  wal::DbOptions options;
  options.wal.group_commit = group;
  options.wal.checkpoint_log_bytes = 0;  // measure commits, not snapshots
  sql::Engine engine;
  auto db = wal::OpenDatabase(dir, &engine, options);
  if (!db.ok() || !engine.Execute("CREATE TABLE t (v BIGINT)").ok()) {
    state.SkipWithError("durable engine setup failed");
    return;
  }

  std::vector<double> latencies_ms;
  std::atomic<bool> failed{false};
  std::atomic<int64_t> next_value{0};
  int64_t total_commits = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(writers);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&, t] {
        per_thread[t].reserve(kCommitsPerWriter);
        for (int j = 0; j < kCommitsPerWriter; ++j) {
          const int64_t v = next_value.fetch_add(1);
          const auto q0 = std::chrono::steady_clock::now();
          if (!engine
                   .Execute("INSERT INTO t VALUES (" + std::to_string(v) +
                            ")")
                   .ok()) {
            failed.store(true);
          }
          per_thread[t].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - q0)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_commits += static_cast<int64_t>(writers) * kCommitsPerWriter;
    for (auto& v : per_thread) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  if (failed.load()) state.SkipWithError("commit failed");

  const wal::WalStats stats = db->wal->stats();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  state.counters["commits_per_sec"] = benchmark::Counter(
      static_cast<double>(total_commits), benchmark::Counter::kIsRate);
  state.counters["fsyncs_per_commit"] =
      stats.commits_synced == 0
          ? 0.0
          : static_cast<double>(stats.fsyncs) /
                static_cast<double>(stats.commits_synced);
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["writers"] = writers;
  state.counters["group_commit"] = group ? 1 : 0;

  db->wal.reset();
  fs::remove_all(dir);
}

BENCHMARK(BM_WalCommit)
    ->ArgNames({"writers", "group"})
    ->ArgsProduct({{1, 2, 4, 8, 16, 32}, {1, 0}})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_WalRecovery(benchmark::State& state) {
  const int ntxns = static_cast<int>(state.range(0));
  const std::string dir = BenchDir("recovery_" + std::to_string(ntxns));
  fs::remove_all(dir);
  {
    // Build the log once. sync_on_commit off: the build is setup, the
    // replay is the benchmark.
    wal::DbOptions options;
    options.wal.sync_on_commit = false;
    options.wal.checkpoint_log_bytes = 0;
    sql::Engine engine;
    auto db = wal::OpenDatabase(dir, &engine, options);
    if (!db.ok() ||
        !engine.Execute("CREATE TABLE t (v BIGINT, tag VARCHAR(16))")
             .ok()) {
      state.SkipWithError("log build failed");
      return;
    }
    for (int i = 0; i < ntxns; ++i) {
      if (!engine
               .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                        ", 'tag_" + std::to_string(i % 100) + "')")
               .ok()) {
        state.SkipWithError("log build failed");
        return;
      }
    }
  }

  int64_t replayed = 0;
  for (auto _ : state) {
    Catalog catalog;
    auto info = wal::Recover(dir, &catalog);
    if (!info.ok()) {
      state.SkipWithError("recovery failed");
      return;
    }
    replayed += static_cast<int64_t>(info->txns_applied);
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["txns_per_sec"] = benchmark::Counter(
      static_cast<double>(replayed), benchmark::Counter::kIsRate);
  state.counters["txns"] = ntxns;
  fs::remove_all(dir);
}

BENCHMARK(BM_WalRecovery)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
