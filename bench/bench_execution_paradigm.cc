// E2 (§3): tuple-at-a-time Volcano iteration with an interpreted expression
// tree vs the zero-degree-of-freedom BAT algebra, on
//   SELECT sum(b) FROM t WHERE a >= lo AND a <= hi
// over 4M rows at several selectivities. The paper's claim: interpretation
// overhead + instruction-cache pressure make tuple-at-a-time dramatically
// slower; bulk operators run tight loops.

#include <benchmark/benchmark.h>

#include "core/group.h"
#include "core/project.h"
#include "core/select.h"
#include "volcano/operators.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 4 << 20;
constexpr int64_t kDomain = 1000;

struct Data {
  BatPtr a = bench::UniformInt32(kRows, kDomain, 11);
  BatPtr b = bench::UniformInt32(kRows, 1000000, 12);
};

Data& SharedData() {
  static Data data;
  return data;
}

// range(0) = selectivity in percent.
void BM_VolcanoTupleAtATime(benchmark::State& state) {
  Data& d = SharedData();
  const int64_t hi = kDomain * state.range(0) / 100;
  for (auto _ : state) {
    using namespace volcano;
    auto scan = MakeScan({d.a, d.b});
    auto filt = MakeFilter(
        std::move(scan),
        And(Cmp(CmpOp::kGe, ColumnRef(0), Const(Value::Int(0))),
            Cmp(CmpOp::kLe, ColumnRef(0), Const(Value::Int(hi)))));
    auto agg = MakeAggregate(std::move(filt), {},
                             {{AggSpec::Fn::kSum, 1}});
    auto rows = Collect(agg.get());
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_VolcanoTupleAtATime)->Arg(1)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_BatColumnAtATime(benchmark::State& state) {
  Data& d = SharedData();
  const int64_t hi = kDomain * state.range(0) / 100;
  for (auto _ : state) {
    auto sel = algebra::RangeSelect(d.a, nullptr, Value::Int(0),
                                    Value::Int(hi));
    auto proj = algebra::Project(*sel, d.b);
    auto sum = algebra::AggrSum(*proj, nullptr, 1);
    benchmark::DoNotOptimize(sum->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_BatColumnAtATime)->Arg(1)->Arg(10)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
