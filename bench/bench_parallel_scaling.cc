// Morsel-driven parallelism (§3, execution layer): sweep the worker count
// over the parallel BAT-algebra kernels at 16M rows. Each operator splits a
// dense OID range into cache-sized morsels claimed from an atomic cursor;
// the output is bit-identical to the serial kernel, so the only variable is
// wall clock. Counters record the thread count so BENCH_parallel_scaling.json
// can be reduced to a speedup-vs-threads curve per operator.
//
// Note: speedup is bounded by the cores the container actually has; on a
// single-core host every thread count collapses to ~1x.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/group.h"
#include "core/project.h"
#include "core/select.h"
#include "join/partitioned_hash_join.h"
#include "parallel/exec_context.h"
#include "parallel/task_pool.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = size_t{16} << 20;

// Workloads are built once and shared across all thread counts so the sweep
// measures the kernels, not the generators.
const BatPtr& ScanColumn() {
  static BatPtr b = bench::UniformInt32(kRows, 1u << 20, 11);
  return b;
}

const BatPtr& ValueColumn() {
  static BatPtr b = bench::UniformInt64(kRows, uint64_t{1} << 40, 12);
  return b;
}

const BatPtr& OidColumn() {
  static BatPtr b = [] {
    Rng rng(13);
    BatPtr o = Bat::New(PhysType::kOid);
    o->Resize(kRows);
    Oid* v = o->MutableTailData<Oid>();
    for (size_t i = 0; i < kRows; ++i) v[i] = rng.Uniform(kRows);
    return o;
  }();
  return b;
}

const BatPtr& GroupColumn() {
  static BatPtr b = bench::UniformInt32(kRows, 1024, 14);
  return b;
}

const bench::JoinPair& JoinInputs() {
  static bench::JoinPair p = bench::FkJoinPair(kRows, kRows, 15);
  return p;
}

class ScopedCtx {
 public:
  explicit ScopedCtx(int threads) : pool_(threads), ctx_(&pool_) {}
  const parallel::ExecContext& get() const { return ctx_; }

 private:
  parallel::TaskPool pool_;
  parallel::ExecContext ctx_;
};

void BM_ParallelRangeSelect(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& col = ScanColumn();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r = algebra::RangeSelect(col, nullptr, Value::Int(1 << 18),
                                  Value::Int(3 << 18), true, true, false,
                                  ctx.get());
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["threads"] = threads;
}

void BM_ParallelFetchJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& oids = OidColumn();
  const BatPtr& values = ValueColumn();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r = algebra::FetchJoin(oids, values, ctx.get());
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["threads"] = threads;
}

void BM_ParallelGroupAggr(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& col = GroupColumn();
  const BatPtr& values = ValueColumn();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto g = algebra::Group(col, nullptr, 0, ctx.get());
    auto s = algebra::AggrSum(values, g->groups, g->ngroups, ctx.get());
    benchmark::DoNotOptimize(s->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["threads"] = threads;
}

void BM_ParallelPartitionedJoin(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bench::JoinPair& pair = JoinInputs();
  ScopedCtx ctx(threads);
  radix::PartitionedJoinOptions opt;
  opt.ctx = &ctx.get();
  radix::PartitionedJoinStats stats;
  for (auto _ : state) {
    auto r = radix::PartitionedHashJoin(pair.left, pair.right, opt, &stats);
    benchmark::DoNotOptimize(r->left.get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["threads"] = threads;
  state.counters["radix_bits"] = stats.bits;
}

#define THREAD_SWEEP ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1) \
    ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_ParallelRangeSelect) THREAD_SWEEP;
BENCHMARK(BM_ParallelFetchJoin) THREAD_SWEEP;
BENCHMARK(BM_ParallelGroupAggr) THREAD_SWEEP;
BENCHMARK(BM_ParallelPartitionedJoin) THREAD_SWEEP;

}  // namespace
}  // namespace mammoth
