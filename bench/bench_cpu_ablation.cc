// E15 (§4.2, [25]): "cache-conscious algorithms achieve their full
// performance only once ... CPU costs are minimized, e.g., by removing
// function calls and divisions (in the hash function) from inner-most
// loops." Ablations over the hash-join probe loop on cache-resident data
// (so memory cost is flat and CPU differences show):
//   - multiplicative hash + power-of-two mask  (the library's choice)
//   - modulo-prime hash                        (division in the loop)
//   - hash through a function pointer          (call in the loop)
// And the memory x CPU interaction: the same ablation on a cache-exceeding
// table, where the paper observes the combined improvement beats the sum
// of the individual ones.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "workloads.h"

namespace mammoth {
namespace {

struct Table {
  std::vector<uint32_t> buckets;  // 1-based heads
  std::vector<uint32_t> next;
  std::vector<int32_t> keys;
  uint64_t mask = 0;
  uint64_t nbuckets = 0;
};

Table BuildMultiplicative(const BatPtr& r) {
  Table t;
  const size_t n = r->Count();
  t.nbuckets = NextPow2(n);
  t.mask = t.nbuckets - 1;
  t.buckets.assign(t.nbuckets, 0);
  t.next.resize(n);
  t.keys.assign(r->TailData<int32_t>(), r->TailData<int32_t>() + n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = HashInt(static_cast<uint64_t>(t.keys[i])) & t.mask;
    t.next[i] = t.buckets[h];
    t.buckets[h] = static_cast<uint32_t>(i + 1);
  }
  return t;
}

/// Largest prime below a power of two, for the modulo baseline.
uint64_t PrimeBelow(uint64_t n) {
  auto is_prime = [](uint64_t x) {
    for (uint64_t d = 3; d * d <= x; d += 2) {
      if (x % d == 0) return false;
    }
    return x % 2 != 0;
  };
  for (uint64_t p = n - 1;; --p) {
    if (is_prime(p)) return p;
  }
}

Table BuildModulo(const BatPtr& r) {
  Table t;
  const size_t n = r->Count();
  t.nbuckets = PrimeBelow(NextPow2(n));
  t.buckets.assign(t.nbuckets, 0);
  t.next.resize(n);
  t.keys.assign(r->TailData<int32_t>(), r->TailData<int32_t>() + n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = static_cast<uint64_t>(
                           static_cast<uint32_t>(t.keys[i])) %
                       t.nbuckets;
    t.next[i] = t.buckets[h];
    t.buckets[h] = static_cast<uint32_t>(i + 1);
  }
  return t;
}

size_t ProbeMultiplicative(const Table& t, const int32_t* probes, size_t n) {
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t key = probes[i];
    const uint64_t h = HashInt(static_cast<uint64_t>(key)) & t.mask;
    for (uint32_t j = t.buckets[h]; j != 0; j = t.next[j - 1]) {
      hits += t.keys[j - 1] == key;
    }
  }
  return hits;
}

size_t ProbeModulo(const Table& t, const int32_t* probes, size_t n) {
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t key = probes[i];
    const uint64_t h =
        static_cast<uint64_t>(static_cast<uint32_t>(key)) % t.nbuckets;
    for (uint32_t j = t.buckets[h]; j != 0; j = t.next[j - 1]) {
      hits += t.keys[j - 1] == key;
    }
  }
  return hits;
}

using HashFn = uint64_t (*)(uint64_t);

uint64_t CallableHash(uint64_t x) { return HashInt(x); }

size_t ProbeFunctionPointer(const Table& t, const int32_t* probes, size_t n,
                            HashFn fn) {
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t key = probes[i];
    const uint64_t h = fn(static_cast<uint64_t>(key)) & t.mask;
    for (uint32_t j = t.buckets[h]; j != 0; j = t.next[j - 1]) {
      hits += t.keys[j - 1] == key;
    }
  }
  return hits;
}

/// Random 32-bit keys on both sides: neither hash gets an accidental
/// perfect mapping (sequential keys make modulo-prime injective, which
/// would measure distribution luck, not CPU cost).
struct Workload {
  BatPtr left, right;
};

Workload RandomKeys(size_t n) {
  Workload w;
  w.left = bench::UniformInt32(n, 1u << 31, 3);
  w.right = bench::UniformInt32(n, 1u << 31, 4);
  return w;
}

// range(0): inner-table tuples (small = cache-resident, big = RAM).
void BM_ProbeMultiplicativeHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pair = RandomKeys(n);
  const Table t = BuildMultiplicative(pair.right);
  size_t hits = 0;
  for (auto _ : state) {
    hits = ProbeMultiplicative(t, pair.left->TailData<int32_t>(), n);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProbeMultiplicativeHash)->Arg(1 << 14)->Arg(8 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_ProbeModuloPrimeHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pair = RandomKeys(n);
  const Table t = BuildModulo(pair.right);
  size_t hits = 0;
  for (auto _ : state) {
    hits = ProbeModulo(t, pair.left->TailData<int32_t>(), n);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProbeModuloPrimeHash)->Arg(1 << 14)->Arg(8 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_ProbeFunctionPointerHash(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pair = RandomKeys(n);
  const Table t = BuildMultiplicative(pair.right);
  HashFn fn = CallableHash;
  benchmark::DoNotOptimize(fn);  // defeat devirtualization
  size_t hits = 0;
  for (auto _ : state) {
    hits = ProbeFunctionPointer(t, pair.left->TailData<int32_t>(), n, fn);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ProbeFunctionPointerHash)->Arg(1 << 14)->Arg(8 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
