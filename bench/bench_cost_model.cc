// E6 (§4.4): the unified cost model against reality.
//   (a) predicted vs measured cost of sequential and random traversals at
//       growing working-set sizes (the model's basic patterns);
//   (b) the model-chosen radix-bit plan vs an exhaustive empirical sweep of
//       the partitioned join (the "automated tuning" claim).
// Reported: measured ns plus the model's prediction as a counter, so the
// two series print side by side.

#include <benchmark/benchmark.h>

#include "cost/calibrator.h"
#include "cost/model.h"
#include "join/partitioned_hash_join.h"
#include "workloads.h"

namespace mammoth {
namespace {

const cost::HardwareProfile& Hw() {
  static const cost::HardwareProfile hw = cost::Calibrate();
  return hw;
}

void BM_SeqTraversalMeasuredVsModel(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const size_t n = bytes / sizeof(int64_t);
  BatPtr column = bench::UniformInt64(n, 1u << 30, 3);
  const int64_t* v = column->TailData<int64_t>();
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) sink += v[i];
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(state.iterations() * bytes);
  state.counters["model_ns"] =
      cost::ScoreNs(Hw(), cost::SeqTraversal(Hw(), bytes));
}
BENCHMARK(BM_SeqTraversalMeasuredVsModel)
    ->Arg(1 << 20)->Arg(16 << 20)->Arg(64 << 20)
    ->Unit(benchmark::kMillisecond);

void BM_RandomAccessMeasuredVsModel(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const size_t accesses = 1 << 20;
  // RandomAccess models *independent* accesses (MLP applies), so compare
  // against the gather measurement, not the dependent pointer chase.
  const double measured_per_access =
      cost::MeasureGatherLatencyNs(bytes, accesses);
  for (auto _ : state) {
    // The calibrator did the measurement; report it once per run.
    benchmark::DoNotOptimize(measured_per_access);
  }
  state.counters["measured_ns_per_access"] = measured_per_access;
  state.counters["model_ns_per_access"] =
      cost::ScoreNs(Hw(), cost::RandomAccess(Hw(), bytes, accesses)) /
      static_cast<double>(accesses);
}
BENCHMARK(BM_RandomAccessMeasuredVsModel)
    ->Arg(16 << 10)->Arg(256 << 10)->Arg(4 << 20)->Arg(64 << 20)
    ->Iterations(1);

void BM_ModelPlannedJoinVsSweep(benchmark::State& state) {
  const size_t n = 4 << 20;
  auto pair = bench::FkJoinPair(n, n, 7);
  const cost::RadixPlan plan =
      cost::PlanRadixJoin(Hw(), n, n, sizeof(int32_t));
  radix::PartitionedJoinOptions opt;
  opt.bits = plan.bits;
  opt.passes = plan.passes;
  for (auto _ : state) {
    auto r = radix::PartitionedHashJoin(pair.left, pair.right, opt);
    benchmark::DoNotOptimize(r->left.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["planned_bits"] = plan.bits;
  state.counters["planned_passes"] = plan.passes;
  state.counters["predicted_ms"] = plan.predicted_ns / 1e6;
}
BENCHMARK(BM_ModelPlannedJoinVsSweep)->Unit(benchmark::kMillisecond);

// The empirical sweep the planner should approximate (compare the fastest
// row here with the planned configuration above).
void BM_EmpiricalJoinSweep(benchmark::State& state) {
  const size_t n = 4 << 20;
  auto pair = bench::FkJoinPair(n, n, 7);
  radix::PartitionedJoinOptions opt;
  opt.bits = static_cast<int>(state.range(0));
  opt.passes = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto r = radix::PartitionedHashJoin(pair.left, pair.right, opt);
    benchmark::DoNotOptimize(r->left.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["predicted_ms"] =
      cost::PartitionedJoinCostNs(Hw(), n, n, sizeof(int32_t), opt.bits,
                                  opt.passes) /
      1e6;
}
BENCHMARK(BM_EmpiricalJoinSweep)
    ->Args({0, 1})->Args({4, 1})->Args({8, 1})->Args({8, 2})
    ->Args({12, 2})->Args({14, 2})->Args({16, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
