// End-to-end server throughput: N concurrent wire-protocol clients
// hammer one server over loopback with a small SELECT mix. Sweeps the
// client count 1..64 and reports qps plus p50/p99 per-query latency, so
// BENCH_server_throughput.json tracks how session handling, admission
// control and the engine's reader lock scale together.
//
// MAMMOTH_BENCH_ROWS overrides the table size (default 20000).

#include <arpa/inet.h>
#include <benchmark/benchmark.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/table.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace mammoth;

size_t BenchRows() {
  const char* env = std::getenv("MAMMOTH_BENCH_ROWS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20000;
}

void Populate(sql::Engine* engine, size_t rows) {
  auto st = engine->Execute(
      "CREATE TABLE metrics (id INT, value INT, tag VARCHAR(16))");
  if (!st.ok()) std::abort();
  constexpr size_t kBatch = 1000;
  for (size_t base = 0; base < rows; base += kBatch) {
    std::string insert = "INSERT INTO metrics VALUES ";
    const size_t end = std::min(base + kBatch, rows);
    for (size_t i = base; i < end; ++i) {
      if (i > base) insert += ", ";
      const char* tag = i % 2 == 0 ? "even" : "odd";
      insert += "(" + std::to_string(i) + ", " +
                std::to_string((i * 131) % 10000) + ", '" + tag + "')";
    }
    if (!engine->Execute(insert).ok()) std::abort();
  }
}

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> mix = {
      "SELECT COUNT(*) FROM metrics WHERE value >= 2500 AND value <= 7500",
      "SELECT tag, SUM(value) FROM metrics GROUP BY tag",
      "SELECT id FROM metrics WHERE value < 200 ORDER BY id LIMIT 50",
  };
  return mix;
}

void BM_ServerThroughput(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kQueriesPerClient = 8;

  server::ServerConfig config;
  config.max_sessions = clients + 4;
  config.admission.max_inflight = 8;
  config.admission.queue_timeout_ms = 60000;
  server::Server server(config);
  Populate(server.engine(), BenchRows());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  // Connect once, outside the timed region: we measure query
  // throughput, not handshakes.
  std::vector<server::Client> conns;
  conns.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    conns.push_back(std::move(*c));
  }

  std::vector<double> latencies_ms;
  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(clients);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        per_thread[t].reserve(kQueriesPerClient);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const std::string& sql =
              QueryMix()[(t + q) % QueryMix().size()];
          const auto q0 = std::chrono::steady_clock::now();
          if (!conns[t].Query(sql).ok()) failed.store(true);
          per_thread[t].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - q0)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    state.SetIterationTime(seconds);
    total_queries += static_cast<int64_t>(clients) * kQueriesPerClient;
    for (auto& v : per_thread) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  if (failed.load()) state.SkipWithError("query failed");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["clients"] = clients;
}

BENCHMARK(BM_ServerThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Scan-heavy mix: every query is a wide range scan over one big table,
// so concurrent sessions pile onto the same column pass and the server's
// shared-scan scheduler (§5) gets to merge them. Reports the physical
// chunk loads per query alongside qps so the sharing win is visible in
// BENCH_server_throughput.json (loads_per_query should shrink as the
// client count grows; compare bench_shared_scan.cc for the in-process
// version of the same sweep).

mammoth::TablePtr BigScanTable(size_t nrows) {
  using namespace mammoth;
  BatPtr id = Bat::New(PhysType::kInt64);
  id->Resize(nrows);
  int64_t* idp = id->MutableTailData<int64_t>();
  BatPtr val = Bat::New(PhysType::kInt64);
  val->Resize(nrows);
  int64_t* valp = val->MutableTailData<int64_t>();
  Rng rng(77);
  for (size_t i = 0; i < nrows; ++i) {
    idp[i] = static_cast<int64_t>(i);
    valp[i] = static_cast<int64_t>(rng.Next() % 100000);
  }
  auto t = Table::FromColumns(
      "metrics_big",
      {{"id", PhysType::kInt64}, {"val", PhysType::kInt64}},
      {id, val});
  if (!t.ok()) std::abort();
  return *t;
}

std::string ScanHeavyQuery(int i) {
  const int lo = 2500 * (i % 4);
  const int hi = lo + 85000;
  return "SELECT COUNT(*), SUM(val) FROM metrics_big WHERE val >= " +
         std::to_string(lo) + " AND val <= " + std::to_string(hi);
}

void BM_ServerScanHeavy(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kQueriesPerClient = 4;
  constexpr size_t kChunkRows = size_t{1} << 16;

  server::ServerConfig config;
  config.max_sessions = clients + 4;
  config.admission.max_inflight = 8;
  config.admission.queue_timeout_ms = 60000;
  config.shared_scan.chunk_rows = kChunkRows;
  config.shared_scan.min_share_rows = kChunkRows;
  server::Server server(config);
  if (!server.engine()
           ->catalog()
           ->Register(BigScanTable(16 * kChunkRows + 321))
           .ok()) {
    state.SkipWithError("register failed");
    return;
  }
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<server::Client> conns;
  conns.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    conns.push_back(std::move(*c));
  }

  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  uint64_t loads = 0;
  for (auto _ : state) {
    const auto before = server.stats().shared_scans;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          if (!conns[t].Query(ScanHeavyQuery(t + q)).ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_queries += static_cast<int64_t>(clients) * kQueriesPerClient;
    const auto after = server.stats().shared_scans;
    loads += (after.chunks_loaded - before.chunks_loaded) +
             (after.chunks_direct - before.chunks_direct);
  }
  if (failed.load()) state.SkipWithError("query failed");

  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["loads_per_query"] =
      total_queries == 0
          ? 0.0
          : static_cast<double>(loads) / static_cast<double>(total_queries);
  state.counters["clients"] = clients;
}

BENCHMARK(BM_ServerScanHeavy)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Mixed read/write sessions against a *durable* server: each client
// interleaves INSERT/UPDATE/DELETE (write-ahead-logged, group-committed)
// with the SELECT mix. The interesting counters are qps under the
// engine's writer lock plus fsyncs_per_commit from the WAL — concurrent
// sessions' commits should batch well below one fsync each.

std::string DmlMixQuery(int client, int seq, std::atomic<int64_t>* next_id) {
  switch (seq % 5) {
    case 0:
    case 1: {
      const int64_t id = 1000000 + next_id->fetch_add(1);
      return "INSERT INTO metrics VALUES (" + std::to_string(id) + ", " +
             std::to_string((id * 131) % 10000) + ", 'fresh')";
    }
    case 2:
      return "UPDATE metrics SET value = " +
             std::to_string((client * 97 + seq) % 10000) +
             " WHERE id = " + std::to_string(client * 7 + seq);
    case 3:
      return "DELETE FROM metrics WHERE id = " +
             std::to_string(1000000 + client * 131 + seq);
    default:
      return QueryMix()[(client + seq) % QueryMix().size()];
  }
}

void BM_ServerDmlMix(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kQueriesPerClient = 8;

  const std::string dir =
      "bench_server_dml_db_" + std::to_string(clients);
  std::filesystem::remove_all(dir);
  server::ServerConfig config;
  config.max_sessions = clients + 4;
  config.admission.max_inflight = 8;
  config.admission.queue_timeout_ms = 60000;
  config.db_dir = dir;
  config.db.wal.checkpoint_log_bytes = 0;  // measure commits, not snapshots
  server::Server server(config);
  if (!server.OpenDurableStorage().ok()) {
    state.SkipWithError("durable open failed");
    return;
  }
  Populate(server.engine(), BenchRows());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<server::Client> conns;
  conns.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    conns.push_back(std::move(*c));
  }

  std::atomic<bool> failed{false};
  std::atomic<int64_t> next_id{0};
  int64_t total_queries = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        for (int q = 0; q < kQueriesPerClient; ++q) {
          if (!conns[t].Query(DmlMixQuery(t, q, &next_id)).ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_queries += static_cast<int64_t>(clients) * kQueriesPerClient;
  }
  if (failed.load()) state.SkipWithError("query failed");

  const auto stats = server.stats();
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["fsyncs_per_commit"] =
      stats.wal.commits_synced == 0
          ? 0.0
          : static_cast<double>(stats.wal.fsyncs) /
                static_cast<double>(stats.wal.commits_synced);
  state.counters["clients"] = clients;
  server.Stop();
  std::filesystem::remove_all(dir);
}

BENCHMARK(BM_ServerDmlMix)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// The C10K sweep (§ the epoll front-end): thousands of mostly-idle
// connections stay open while a handful of active sessions run a
// point-query mix. With the reactor an idle connection is an fd plus two
// buffers, so qps/p50/p99 should hold roughly flat as the idle herd
// grows; the thread-per-connection baseline (frontend=1) pays a parked
// thread per connection. The herd lives in a forked child process
// because this benchmark holds *both* ends of every socket and the
// container caps RLIMIT_NOFILE at ~20K fds — one process per side keeps
// 10K+ connections under the ceiling.

std::string PointQuery(int i) {
  return "SELECT value FROM metrics WHERE id = " +
         std::to_string((i * 7919) % 20000);
}

/// Best-effort bump of the fd ceiling, then the largest idle-herd size
/// the *parent* process (server side: one accepted fd per connection)
/// can carry. The child carries the client side under its own limit.
int ClampIdleConns(int requested) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return requested;
  const rlim_t want = static_cast<rlim_t>(requested) + 512;
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = want;
    raised.rlim_max = std::max(rl.rlim_max, want);
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0 ||
        (raised.rlim_max = rl.rlim_max,
         raised.rlim_cur = std::min(want, rl.rlim_max),
         setrlimit(RLIMIT_NOFILE, &raised) == 0)) {
      getrlimit(RLIMIT_NOFILE, &rl);
    }
  }
  if (rl.rlim_cur >= want) return requested;
  return static_cast<int>(rl.rlim_cur) - 512;
}

/// A forked process holding `count` open connections to `port`. The
/// child connects, never reads, and releases the herd when the parent
/// closes the control pipe.
struct IdleHerd {
  pid_t pid = -1;
  int release_fd = -1;  ///< parent closes to tear the herd down
  int opened = 0;       ///< connections actually established

  static IdleHerd Spawn(uint16_t port, int count) {
    IdleHerd herd;
    int report[2], release[2];
    if (pipe(report) != 0 || pipe(release) != 0) return herd;
    herd.pid = fork();
    if (herd.pid == 0) {
      // Child: open the herd, report the count, then park until the
      // parent hangs up.
      ::close(report[0]);
      ::close(release[1]);
      std::vector<int> fds;
      fds.reserve(count);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      for (int i = 0; i < count; ++i) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) break;
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
          ::close(fd);
          break;
        }
        fds.push_back(fd);
      }
      int32_t n = static_cast<int32_t>(fds.size());
      (void)!::write(report[1], &n, sizeof(n));
      ::close(report[1]);
      char sink;
      (void)!::read(release[0], &sink, 1);  // blocks until parent closes
      _exit(0);
    }
    // Parent.
    ::close(report[1]);
    ::close(release[0]);
    herd.release_fd = release[1];
    int32_t n = 0;
    if (::read(report[0], &n, sizeof(n)) == sizeof(n)) herd.opened = n;
    ::close(report[0]);
    return herd;
  }

  void Release() {
    if (release_fd >= 0) {
      ::close(release_fd);
      release_fd = -1;
    }
    if (pid > 0) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

void BM_ServerC10K(benchmark::State& state) {
  const int idle_requested = static_cast<int>(state.range(0));
  const bool threads_frontend = state.range(1) != 0;
  const int idle = std::max(0, ClampIdleConns(idle_requested));
  constexpr int kActive = 8;
  constexpr int kQueriesPerClient = 16;

  server::ServerConfig config;
  config.frontend = threads_frontend
                        ? server::ServerConfig::Frontend::kThreads
                        : server::ServerConfig::Frontend::kEpoll;
  config.max_sessions = idle + kActive + 8;
  config.admission.max_inflight = 8;
  config.admission.queue_timeout_ms = 60000;
  config.drain_force_millis = 2000;
  server::Server server(config);
  Populate(server.engine(), BenchRows());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  IdleHerd herd;
  if (idle > 0) {
    herd = IdleHerd::Spawn(server.port(), idle);
    if (herd.opened < idle / 2) {
      herd.Release();
      state.SkipWithError("idle herd failed to open");
      return;
    }
    // Let the front-end finish accepting/handshaking the whole herd
    // (bounded: the thread front-end may take a while to spawn it).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (server.stats().sessions_open < herd.opened &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  std::vector<server::Client> conns;
  conns.reserve(kActive);
  for (int i = 0; i < kActive; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      herd.Release();
      state.SkipWithError("connect failed");
      return;
    }
    conns.push_back(std::move(*c));
  }

  std::vector<double> latencies_ms;
  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(kActive);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kActive; ++t) {
      threads.emplace_back([&, t] {
        per_thread[t].reserve(kQueriesPerClient);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto q0 = std::chrono::steady_clock::now();
          if (!conns[t].Query(PointQuery(t * kQueriesPerClient + q)).ok()) {
            failed.store(true);
          }
          per_thread[t].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - q0)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_queries += static_cast<int64_t>(kActive) * kQueriesPerClient;
    for (auto& v : per_thread) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  herd.Release();
  if (failed.load()) state.SkipWithError("query failed");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["open_conns"] = herd.opened + kActive;
  state.counters["threads_frontend"] = threads_frontend ? 1 : 0;
}

// The thread-per-connection baseline stops at 4000 idle connections:
// past that, thread stacks and scheduler load swamp the box the reactor
// sails through.
BENCHMARK(BM_ServerC10K)
    ->Args({0, 0})
    ->Args({1000, 0})
    ->Args({2000, 0})  // the CI smoke point
    ->Args({4000, 0})
    ->Args({10000, 0})
    ->Args({0, 1})
    ->Args({1000, 1})
    ->Args({4000, 1})
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// Prepared-vs-raw on the same point-query mix: EXECUTE skips SQL
// parsing and SQL→MAL compilation per query (the plan cache hits), so
// the prepared flavour's qps win is exactly the front-end cost the
// plan cache removes.

void BM_ServerPreparedPointQueries(benchmark::State& state) {
  const bool prepared = state.range(0) != 0;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 64;

  server::ServerConfig config;
  config.max_sessions = kClients + 4;
  config.admission.max_inflight = 8;
  config.admission.queue_timeout_ms = 60000;
  server::Server server(config);
  Populate(server.engine(), BenchRows());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<server::Client> conns;
  std::vector<server::PreparedHandle> handles(kClients);
  conns.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    if (prepared) {
      auto h = c->Prepare("SELECT value FROM metrics WHERE id = ?");
      if (!h.ok()) {
        state.SkipWithError("prepare failed");
        return;
      }
      handles[i] = *h;
    }
    conns.push_back(std::move(*c));
  }

  std::vector<double> latencies_ms;
  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(kClients);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        per_thread[t].reserve(kQueriesPerClient);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const int64_t id = ((t * kQueriesPerClient + q) * 7919) % 20000;
          const auto q0 = std::chrono::steady_clock::now();
          const bool ok =
              prepared
                  ? conns[t]
                        .ExecutePrepared(handles[t], {Value::Int(id)})
                        .ok()
                  : conns[t]
                        .Query("SELECT value FROM metrics WHERE id = " +
                               std::to_string(id))
                        .ok();
          if (!ok) failed.store(true);
          per_thread[t].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - q0)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_queries += static_cast<int64_t>(kClients) * kQueriesPerClient;
    for (auto& v : per_thread) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  if (failed.load()) state.SkipWithError("query failed");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["prepared"] = prepared ? 1 : 0;
  const auto stats = server.stats();
  state.counters["plan_cache_hits"] =
      static_cast<double>(stats.prepared.hits);
}

BENCHMARK(BM_ServerPreparedPointQueries)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(10)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
