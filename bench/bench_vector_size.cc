// E7 (§5): the X100 vector-size sweep on a TPC-H-Q1-like aggregation:
//   SELECT flag, sum(qty), sum(qty * (1 - disc)), count(*)
//   FROM lineitem WHERE qty <= threshold GROUP BY flag
// over 4M rows. Expectation (the paper's headline number): vector size 1
// behaves like a tuple-at-a-time RDBMS; sizes ~100-1000 are about two
// orders of magnitude faster; a full-column vector (operator-at-a-time)
// loses ground again once the intermediates exceed the caches.

#include <benchmark/benchmark.h>

#include "vector/pipeline.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 4 << 20;

struct Q1Data {
  BatPtr flag = bench::UniformInt32(kRows, 4, 21);
  BatPtr qty = bench::UniformDouble(kRows, 22);
  BatPtr disc = bench::UniformDouble(kRows, 23);
};

Q1Data& SharedData() {
  static Q1Data d;
  return d;
}

void BM_VectorSizeSweep(benchmark::State& state) {
  Q1Data& d = SharedData();
  const size_t vsize = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    vec::Pipeline p({d.flag, d.qty, d.disc}, vsize);
    // WHERE qty <= 0.95
    benchmark::DoNotOptimize(p.AddSelectRange(1, 0.0, 0.95).ok());
    // revenue = qty * (1 - disc) == qty * ((disc - 1) * -1)
    auto dm1 = p.AddMapColConst(vec::BinOp::kSub, 2, 1.0);
    auto one_minus = p.AddMapColConst(vec::BinOp::kMul, *dm1, -1.0);
    auto revenue = p.AddMapColCol(vec::BinOp::kMul, 1, *one_minus);
    benchmark::DoNotOptimize(
        p.SetAggregate(0, 4,
                       {{vec::AggFn::kSum, 1},
                        {vec::AggFn::kSum, *revenue},
                        {vec::AggFn::kCount, 0}})
            .ok());
    auto r = p.Run();
    benchmark::DoNotOptimize(r->aggregates.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["vector_size"] = static_cast<double>(vsize);
}
BENCHMARK(BM_VectorSizeSweep)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Arg(1024)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(1 << 20)->Arg(kRows)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
