// E13 (§7; [46] DSM vs NSM, [5] PAX): storage-layout tradeoffs on an
// 8-column int32 table of 4M rows.
//   - scan k of 8 columns sequentially (DSM touches only k/8 of the bytes;
//     NSM drags whole rows through the cache; PAX behaves like DSM);
//   - reconstruct full tuples at random positions (NSM: one contiguous
//     row; PAX: one page, several minipages; DSM: 8 scattered arrays).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "layout/nsm.h"
#include "layout/pax.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 4 << 20;
constexpr size_t kCols = 8;

layout::RowSchema Schema() {
  return layout::RowSchema(std::vector<PhysType>(kCols, PhysType::kInt32));
}

template <typename Store>
Store& SharedStore() {
  static Store store = [] {
    Store s(Schema());
    Rng rng(91);
    for (size_t r = 0; r < kRows; ++r) {
      int32_t row[kCols];
      for (size_t c = 0; c < kCols; ++c) {
        row[c] = static_cast<int32_t>(rng.Next());
      }
      s.AppendRow(row);
    }
    return s;
  }();
  return store;
}

std::vector<BatPtr>& SharedDsm() {
  static std::vector<BatPtr> columns = [] {
    std::vector<BatPtr> out;
    // Same logical content as the row stores.
    Rng rng(91);
    for (size_t c = 0; c < kCols; ++c) {
      out.push_back(Bat::New(PhysType::kInt32));
      out.back()->Resize(kRows);
    }
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < kCols; ++c) {
        out[c]->MutableTailData<int32_t>()[r] =
            static_cast<int32_t>(rng.Next());
      }
    }
    return out;
  }();
  return columns;
}

// --- Column scans: range(0) = number of columns scanned -------------------

void BM_ScanDsm(benchmark::State& state) {
  auto& columns = SharedDsm();
  const size_t k = static_cast<size_t>(state.range(0));
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t c = 0; c < k; ++c) {
      const int32_t* v = columns[c]->TailData<int32_t>();
      for (size_t r = 0; r < kRows; ++r) sink += v[r];
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kRows * k);
}
BENCHMARK(BM_ScanDsm)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ScanNsm(benchmark::State& state) {
  auto& store = SharedStore<layout::NsmStore>();
  const size_t k = static_cast<size_t>(state.range(0));
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < k; ++c) {
        sink += store.Field<int32_t>(r, c);
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kRows * k);
}
BENCHMARK(BM_ScanNsm)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ScanPax(benchmark::State& state) {
  auto& store = SharedStore<layout::PaxStore>();
  const size_t k = static_cast<size_t>(state.range(0));
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < k; ++c) {
        sink += store.Field<int32_t>(r, c);
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kRows * k);
}
BENCHMARK(BM_ScanPax)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Random full-tuple reconstruction --------------------------------------

constexpr size_t kProbes = 1 << 18;

std::vector<size_t>& ProbeRows() {
  static std::vector<size_t> probes = [] {
    Rng rng(92);
    std::vector<size_t> out(kProbes);
    for (auto& p : out) p = rng.Uniform(kRows);
    return out;
  }();
  return probes;
}

void BM_ReconstructNsm(benchmark::State& state) {
  auto& store = SharedStore<layout::NsmStore>();
  int32_t row[kCols];
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t p : ProbeRows()) {
      store.ReadRow(p, row);
      sink += row[0] + row[7];
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_ReconstructNsm)->Unit(benchmark::kMillisecond);

void BM_ReconstructPax(benchmark::State& state) {
  auto& store = SharedStore<layout::PaxStore>();
  int32_t row[kCols];
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t p : ProbeRows()) {
      store.ReadRow(p, row);
      sink += row[0] + row[7];
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_ReconstructPax)->Unit(benchmark::kMillisecond);

void BM_ReconstructDsm(benchmark::State& state) {
  auto& columns = SharedDsm();
  int32_t row[kCols];
  int64_t sink = 0;
  for (auto _ : state) {
    for (size_t p : ProbeRows()) {
      for (size_t c = 0; c < kCols; ++c) {
        row[c] = columns[c]->TailData<int32_t>()[p];
      }
      sink += row[0] + row[7];
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kProbes);
}
BENCHMARK(BM_ReconstructDsm)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
