// Shared main for all bench_* binaries: runs Google Benchmark as usual but
// additionally writes the full machine-readable result to
// BENCH_<name>.json in the working directory (name = binary name without
// the bench_ prefix), so the perf trajectory can be tracked across PRs.
// Passing an explicit --benchmark_out=... disables the default sidecar.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace {

std::string BinaryBaseName(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const char* prefix = "bench_";
  if (name.rfind(prefix, 0) == 0) name = name.substr(std::strlen(prefix));
  return name.empty() ? "bench" : name;
}

}  // namespace

int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  // Own the injected flags for the duration of Initialize.
  std::string out_flag =
      "--benchmark_out=BENCH_" + BinaryBaseName(argv[0]) + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
