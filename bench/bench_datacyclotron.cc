// E12 (§6.2, [13]): DataCyclotron ring simulation. The hot-set floats
// around the cluster via CPU-bypassing RDMA-style forwards; queries process
// whichever partition passes by. Series:
//   - throughput vs ring size (1..16 nodes) under saturation, vs the
//     centralized single-server baseline;
//   - average wait vs hop latency (the cost of a slow interconnect);
//   - sensitivity to hot-set size (more partitions = longer laps).
// All numbers come from a deterministic discrete-event model (see
// DESIGN.md §3 substitution note); the benchmark wall time is the
// simulation cost, the counters carry the simulated metrics.

#include <benchmark/benchmark.h>

#include "net/datacyclotron.h"

namespace mammoth {
namespace {

net::RingConfig Saturated() {
  net::RingConfig c;
  c.partitions = 64;
  c.hop_seconds = 0.0001;
  c.process_seconds = 0.002;
  c.num_queries = 20000;
  c.arrival_rate = 1e9;  // back-to-back arrivals: saturation
  // Throughput/latency sweeps use pure-latency hops; the hot-set sweep
  // below turns the bandwidth term on explicitly.
  c.link_bytes_per_second = 0;
  return c;
}

void BM_RingThroughputVsNodes(benchmark::State& state) {
  net::RingConfig c = Saturated();
  c.nodes = static_cast<size_t>(state.range(0));
  net::RingStats s;
  for (auto _ : state) {
    s = net::SimulateRing(c);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["sim_throughput_qps"] = s.throughput;
  state.counters["sim_latency_ms"] = s.avg_latency * 1e3;
  state.counters["sim_cpu_util"] = s.cpu_utilization;
}
BENCHMARK(BM_RingThroughputVsNodes)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_CentralizedBaseline(benchmark::State& state) {
  net::RingConfig c = Saturated();
  c.nodes = static_cast<size_t>(state.range(0));  // ignored by the baseline
  net::RingStats s;
  for (auto _ : state) {
    s = net::SimulateCentralized(c);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["sim_throughput_qps"] = s.throughput;
  state.counters["sim_latency_ms"] = s.avg_latency * 1e3;
}
BENCHMARK(BM_CentralizedBaseline)->Arg(1);

void BM_RingWaitVsHopLatency(benchmark::State& state) {
  net::RingConfig c = Saturated();
  c.nodes = 8;
  c.arrival_rate = 200;  // light load: wait is data-arrival dominated
  c.num_queries = 2000;
  c.hop_seconds = static_cast<double>(state.range(0)) * 1e-6;
  net::RingStats s;
  for (auto _ : state) {
    s = net::SimulateRing(c);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["sim_wait_ms"] = s.avg_wait * 1e3;
}
BENCHMARK(BM_RingWaitVsHopLatency)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RingHotSetSize(benchmark::State& state) {
  net::RingConfig c = Saturated();
  c.nodes = 8;
  c.partitions = static_cast<size_t>(state.range(0));
  c.partition_bytes = 1 << 20;
  c.link_bytes_per_second = 10e9 / 8;  // hop time grows with the hot set
  net::RingStats s;
  for (auto _ : state) {
    s = net::SimulateRing(c);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["sim_throughput_qps"] = s.throughput;
  state.counters["sim_wait_ms"] = s.avg_wait * 1e3;
}
BENCHMARK(BM_RingHotSetSize)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace
}  // namespace mammoth
