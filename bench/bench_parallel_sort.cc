// Parallel ordering layer: sweep the worker count over Sort (radix and
// merge paths), TopN and the RefineSort ORDER-BY chain at 16M rows. Every
// kernel is bit-identical to its serial schedule, so the only variable is
// wall clock. BM_TopNViaSortSlice is the baseline TopN replaces: a full
// sort that keeps only the first k positions — the heap-based TopN does
// O(n + k log k) work instead.
//
// Row count is tunable via MAMMOTH_BENCH_ROWS (CI smoke runs use a small N;
// the default is the full 16M). Counters record the thread count so
// BENCH_parallel_sort.json reduces to a speedup-vs-threads curve per
// kernel. On a single-core host every thread count collapses to ~1x.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>

#include "core/sort.h"
#include "parallel/exec_context.h"
#include "parallel/task_pool.h"
#include "workloads.h"

namespace mammoth {
namespace {

size_t BenchRows() {
  static const size_t rows = [] {
    if (const char* env = std::getenv("MAMMOTH_BENCH_ROWS")) {
      const long long v = std::atoll(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    return size_t{16} << 20;
  }();
  return rows;
}

// Workloads are built once and shared across all thread counts so the sweep
// measures the kernels, not the generators.
const BatPtr& Int32Column() {
  static BatPtr b = bench::UniformInt32(BenchRows(), 1u << 30, 41);
  return b;
}

const BatPtr& DoubleColumn() {
  static BatPtr b = bench::UniformDouble(BenchRows(), 42);
  return b;
}

const BatPtr& MajorKeyColumn() {
  static BatPtr b = bench::UniformInt32(BenchRows(), 1000, 43);
  return b;
}

class ScopedCtx {
 public:
  explicit ScopedCtx(int threads) : pool_(threads), ctx_(&pool_) {}
  const parallel::ExecContext& get() const { return ctx_; }

 private:
  parallel::TaskPool pool_;
  parallel::ExecContext ctx_;
};

void BM_ParallelSortInt32(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& col = Int32Column();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r = algebra::Sort(col, false, ctx.get());
    benchmark::DoNotOptimize(r->order.get());
  }
  state.SetItemsProcessed(state.iterations() * col->Count());
  state.counters["threads"] = threads;
}

void BM_ParallelSortDouble(benchmark::State& state) {
  // Doubles take the run-formation + loser-tree-merge path (no radix).
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& col = DoubleColumn();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r = algebra::Sort(col, false, ctx.get());
    benchmark::DoNotOptimize(r->order.get());
  }
  state.SetItemsProcessed(state.iterations() * col->Count());
  state.counters["threads"] = threads;
}

void BM_ParallelTopN(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& col = Int32Column();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r = algebra::TopN(col, 100, false, ctx.get());
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * col->Count());
  state.counters["threads"] = threads;
  state.counters["k"] = 100;
}

void BM_TopNViaSortSlice(benchmark::State& state) {
  // The plan TopN replaces: full sort, keep the first k order entries.
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& col = Int32Column();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r = algebra::Sort(col, false, ctx.get());
    BatPtr top = Bat::New(PhysType::kOid);
    top->Reserve(100);
    for (size_t i = 0; i < 100 && i < r->order->Count(); ++i) {
      top->Append<Oid>(r->order->OidAt(i));
    }
    benchmark::DoNotOptimize(top.get());
  }
  state.SetItemsProcessed(state.iterations() * col->Count());
  state.counters["threads"] = threads;
  state.counters["k"] = 100;
}

void BM_ParallelRefineSortChain(benchmark::State& state) {
  // Two-key ORDER BY: major key (1000 distinct) then a minor int32 key
  // refined inside the ~16K-row tie groups the first pass leaves.
  const int threads = static_cast<int>(state.range(0));
  const BatPtr& major = MajorKeyColumn();
  const BatPtr& minor = Int32Column();
  ScopedCtx ctx(threads);
  for (auto _ : state) {
    auto r1 = algebra::RefineSort(major, nullptr, nullptr, false, ctx.get());
    auto r2 = algebra::RefineSort(minor, r1->order, r1->tie_groups, false,
                                  ctx.get());
    benchmark::DoNotOptimize(r2->order.get());
  }
  state.SetItemsProcessed(state.iterations() * major->Count());
  state.counters["threads"] = threads;
}

#define THREAD_SWEEP ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1) \
    ->Unit(benchmark::kMillisecond)

BENCHMARK(BM_ParallelSortInt32) THREAD_SWEEP;
BENCHMARK(BM_ParallelSortDouble) THREAD_SWEEP;
BENCHMARK(BM_ParallelTopN) THREAD_SWEEP;
BENCHMARK(BM_TopNViaSortSlice) THREAD_SWEEP;
BENCHMARK(BM_ParallelRefineSortChain) THREAD_SWEEP;

}  // namespace
}  // namespace mammoth
