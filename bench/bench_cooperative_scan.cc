// E14 (§5, [45]): cooperative scans. Concurrent table scans arrive
// staggered; the relevance-driven active buffer manager shares chunk loads
// across them instead of letting each query drag its own pass through the
// I/O channel. Series: simulated chunk loads / makespan / latency for the
// cooperative vs the traditional independent policy, at growing
// concurrency. (Wall time measures the simulator; counters carry the
// simulated results, as in E12.)

#include <benchmark/benchmark.h>

#include "scan/cooperative.h"

namespace mammoth {
namespace {

scan::ScanConfig DiskLike() {
  scan::ScanConfig c;
  c.total_chunks = 512;         // e.g. a 512MB column in 1MB chunks
  c.chunk_load_seconds = 0.004;  // 250MB/s sequential disk
  c.buffer_chunks = 32;
  return c;
}

std::vector<scan::ScanQuery> Staggered(size_t n, size_t total_chunks,
                                       double stagger) {
  std::vector<scan::ScanQuery> qs(n);
  for (size_t i = 0; i < n; ++i) {
    qs[i].first_chunk = 0;
    qs[i].last_chunk = total_chunks - 1;
    qs[i].arrival_time = stagger * static_cast<double>(i);
  }
  return qs;
}

void BM_CooperativePolicy(benchmark::State& state) {
  const scan::ScanConfig c = DiskLike();
  const auto qs = Staggered(static_cast<size_t>(state.range(0)),
                            c.total_chunks, c.chunk_load_seconds * 100);
  scan::ScanStats s;
  for (auto _ : state) {
    s = scan::RunCooperative(c, qs);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["sim_loads"] = static_cast<double>(s.chunk_loads);
  state.counters["sim_makespan_s"] = s.makespan;
  state.counters["sim_latency_s"] = s.avg_latency;
}
BENCHMARK(BM_CooperativePolicy)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_IndependentPolicy(benchmark::State& state) {
  const scan::ScanConfig c = DiskLike();
  const auto qs = Staggered(static_cast<size_t>(state.range(0)),
                            c.total_chunks, c.chunk_load_seconds * 100);
  scan::ScanStats s;
  for (auto _ : state) {
    s = scan::RunIndependent(c, qs);
    benchmark::DoNotOptimize(s.makespan);
  }
  state.counters["sim_loads"] = static_cast<double>(s.chunk_loads);
  state.counters["sim_makespan_s"] = s.makespan;
  state.counters["sim_latency_s"] = s.avg_latency;
}
BENCHMARK(BM_IndependentPolicy)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace mammoth
