// E11 (§6.2, [21,23]): DataCell incremental bulk-event processing vs the
// conventional event-at-a-time stream engine loop, on windowed grouped
// aggregation over 1M events. Series: events/second for event-at-a-time vs
// bulk windows of growing size — the bulk (basket) approach amortizes all
// per-event overhead into columnar kernels.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "stream/datacell.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kEvents = 1 << 20;
constexpr int kKeys = 64;

std::vector<stream::Event>& SharedEvents() {
  static std::vector<stream::Event> events = [] {
    Rng rng(81);
    std::vector<stream::Event> out(kEvents);
    for (size_t i = 0; i < kEvents; ++i) {
      out[i].ts = static_cast<int64_t>(i);
      out[i].key = static_cast<int32_t>(rng.Uniform(kKeys));
      out[i].value = rng.NextDouble() * 100.0;
    }
    return out;
  }();
  return events;
}

// A conventional DSMS path: per-event virtual operator dispatch plus an
// interpreted filter predicate (see InterpretedEventAtATimeWindow).
void BM_EventAtATimeInterpreted(benchmark::State& state) {
  const auto& events = SharedEvents();
  const size_t window = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    double sink = 0;
    for (size_t start = 0; start + window <= kEvents; start += window) {
      auto rows = stream::InterpretedEventAtATimeWindow(
          events.data() + start, window, true, 10.0, 90.0);
      sink += rows.empty() ? 0 : rows[0].sum;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventAtATimeInterpreted)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// Idealized hand-coded per-event loop (no engine overhead at all) — the
// hardest baseline the bulk path must approach.
void BM_EventAtATimeHandCoded(benchmark::State& state) {
  const auto& events = SharedEvents();
  const size_t window = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    double sink = 0;
    for (size_t start = 0; start + window <= kEvents; start += window) {
      auto rows = stream::EventAtATimeWindow(events.data() + start, window,
                                             true, 10.0, 90.0);
      sink += rows.empty() ? 0 : rows[0].sum;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventAtATimeHandCoded)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_DataCellBulk(benchmark::State& state) {
  const auto& events = SharedEvents();
  const size_t window = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    stream::DataCell cell;
    double sink = 0;
    stream::ContinuousQuery q;
    q.window = window;
    q.filtered = true;
    q.lo = 10.0;
    q.hi = 90.0;
    q.emit = [&](int64_t, const std::vector<stream::WindowRow>& rows) {
      sink += rows.empty() ? 0 : rows[0].sum;
    };
    cell.Register(q);
    cell.basket().AppendBatch(events.data(), events.size());
    benchmark::DoNotOptimize(cell.Pump().ok());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_DataCellBulk)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
