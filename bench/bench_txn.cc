// Mixed OLTP+OLAP transaction workload over the wire: writer clients run
// BEGIN / k INSERTs / COMMIT batches against a small pool of write tables
// (first-writer-wins claims make collisions real), while reader clients
// run OLAP aggregates inside snapshot transactions on a separate fact
// table. BENCH_txn.json tracks committed transactions per second, the
// write-write conflict rate, and reader p50/p99 latency with and without
// writers — the MVCC promise is that the reader percentiles hold roughly
// flat as writers come online, because snapshot readers take no lock a
// stalled writer holds.
//
// MAMMOTH_BENCH_ROWS overrides the fact-table size (default 20000).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"

namespace {

using namespace mammoth;

size_t BenchRows() {
  const char* env = std::getenv("MAMMOTH_BENCH_ROWS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20000;
}

constexpr int kWriteTables = 4;

void Populate(sql::Engine* engine) {
  auto st = engine->Execute(
      "CREATE TABLE facts (id INT, value INT, tag VARCHAR(16))");
  if (!st.ok()) std::abort();
  const size_t rows = BenchRows();
  constexpr size_t kBatch = 1000;
  for (size_t base = 0; base < rows; base += kBatch) {
    std::string insert = "INSERT INTO facts VALUES ";
    const size_t end = std::min(base + kBatch, rows);
    for (size_t i = base; i < end; ++i) {
      if (i > base) insert += ", ";
      const char* tag = i % 2 == 0 ? "even" : "odd";
      insert += "(" + std::to_string(i) + ", " +
                std::to_string((i * 131) % 10000) + ", '" + tag + "')";
    }
    if (!engine->Execute(insert).ok()) std::abort();
  }
  for (int t = 0; t < kWriteTables; ++t) {
    if (!engine
             ->Execute("CREATE TABLE orders" + std::to_string(t) +
                       " (id BIGINT, amount INT)")
             .ok()) {
      std::abort();
    }
  }
}

const std::vector<std::string>& OlapMix() {
  static const std::vector<std::string> mix = {
      "SELECT COUNT(*), SUM(value) FROM facts WHERE value >= 2500 AND "
      "value <= 7500",
      "SELECT tag, COUNT(*), SUM(value) FROM facts GROUP BY tag",
      "SELECT MIN(value), MAX(value) FROM facts",
  };
  return mix;
}

/// OLTP writers vs OLAP snapshot readers. range(0) = writers, range(1) =
/// readers; the {0, N} point is the reader-only baseline the mixed
/// percentiles are judged against.
void BM_TxnOltpOlapMix(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const int readers = static_cast<int>(state.range(1));
  constexpr int kTxnsPerWriter = 12;
  constexpr int kRowsPerTxn = 4;
  constexpr int kTxnsPerReader = 4;
  constexpr int kQueriesPerTxn = 2;

  server::ServerConfig config;
  config.max_sessions = writers + readers + 4;
  config.admission.max_inflight = 8;
  config.admission.queue_timeout_ms = 60000;
  server::Server server(config);
  Populate(server.engine());
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<server::Client> write_conns, read_conns;
  for (int i = 0; i < writers; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    write_conns.push_back(std::move(*c));
  }
  for (int i = 0; i < readers; ++i) {
    auto c = server::Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    read_conns.push_back(std::move(*c));
  }

  std::vector<double> reader_ms;
  std::atomic<bool> failed{false};
  std::atomic<int64_t> next_id{0};
  int64_t committed = 0, attempted = 0, conflicted = 0;
  for (auto _ : state) {
    std::atomic<int64_t> iter_committed{0}, iter_conflicted{0};
    std::vector<std::vector<double>> per_reader(readers);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        const std::string table = "orders" + std::to_string(w % kWriteTables);
        for (int j = 0; j < kTxnsPerWriter; ++j) {
          if (!write_conns[w].Begin().ok()) {
            failed.store(true);
            return;
          }
          bool clashed = false;
          for (int i = 0; i < kRowsPerTxn && !clashed; ++i) {
            auto r = write_conns[w].Query(
                "INSERT INTO " + table + " VALUES (" +
                std::to_string(next_id.fetch_add(1)) + ", " +
                std::to_string((w * 131 + j) % 1000) + ")");
            if (!r.ok()) {
              if (r.status().code() == StatusCode::kConflict) {
                clashed = true;
              } else {
                failed.store(true);
                return;
              }
            }
          }
          if (clashed) {
            ++iter_conflicted;
            if (!write_conns[w].Rollback().ok()) failed.store(true);
            continue;
          }
          auto c = write_conns[w].Commit();
          if (c.ok()) {
            ++iter_committed;
          } else if (c.code() == StatusCode::kConflict) {
            ++iter_conflicted;
          } else {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        per_reader[r].reserve(kTxnsPerReader * kQueriesPerTxn);
        for (int j = 0; j < kTxnsPerReader; ++j) {
          if (!read_conns[r].Begin().ok()) {
            failed.store(true);
            return;
          }
          for (int q = 0; q < kQueriesPerTxn; ++q) {
            const std::string& sql = OlapMix()[(r + j + q) % OlapMix().size()];
            const auto q0 = std::chrono::steady_clock::now();
            if (!read_conns[r].Query(sql).ok()) failed.store(true);
            per_reader[r].push_back(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - q0)
                    .count());
          }
          if (!read_conns[r].Commit().ok()) failed.store(true);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    committed += iter_committed.load();
    conflicted += iter_conflicted.load();
    attempted += static_cast<int64_t>(writers) * kTxnsPerWriter;
    for (auto& v : per_reader) {
      reader_ms.insert(reader_ms.end(), v.begin(), v.end());
    }
  }
  if (failed.load()) state.SkipWithError("statement failed");

  std::sort(reader_ms.begin(), reader_ms.end());
  auto percentile = [&](double p) {
    if (reader_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(reader_ms.size() - 1));
    return reader_ms[idx];
  };
  state.counters["committed_tps"] = benchmark::Counter(
      static_cast<double>(committed), benchmark::Counter::kIsRate);
  state.counters["conflict_rate"] =
      attempted == 0 ? 0.0
                     : static_cast<double>(conflicted) /
                           static_cast<double>(attempted);
  state.counters["reader_p50_ms"] = percentile(0.50);
  state.counters["reader_p99_ms"] = percentile(0.99);
  state.counters["writers"] = writers;
  state.counters["readers"] = readers;
}

BENCHMARK(BM_TxnOltpOlapMix)
    ->Args({0, 8})   // reader-only baseline
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 0})   // writer-only throughput
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
