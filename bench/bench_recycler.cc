// E10 (§6.1, [19]): recycling intermediates on a Skyserver-like query log.
// Substitution (DESIGN.md §3): the production log is synthesized as
// zipf-repeated range/aggregate templates over an astronomy-style table —
// the recycler's benefit depends only on the repetition/overlap structure.
// Series: total time for a 400-query log with recycling off / LRU /
// benefit-weighted / random eviction, plus hit statistics.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "mal/interpreter.h"
#include "recycle/recycler.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 1 << 20;
constexpr size_t kTemplates = 64;  // distinct query templates in the log
constexpr size_t kLogLength = 400;

std::shared_ptr<Catalog> SkyCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto t = Table::Create("sky", {{"ra", PhysType::kInt32},
                                 {"mag", PhysType::kDouble}});
  BatPtr ra = bench::UniformInt32(kRows, 360000, 71);
  BatPtr mag = bench::UniformDouble(kRows, 72);
  for (size_t i = 0; i < kRows; ++i) {
    benchmark::DoNotOptimize(
        (*t)->Insert({Value::Int(ra->ValueAt<int32_t>(i)),
                      Value::Real(mag->ValueAt<double>(i))})
            .ok());
  }
  benchmark::DoNotOptimize(catalog->Register(*t).ok());
  return catalog;
}

std::shared_ptr<Catalog>& SharedCatalog() {
  static std::shared_ptr<Catalog> catalog = SkyCatalog();
  return catalog;
}

/// avg(mag) over an RA window — the recurring Skyserver cone-search shape.
mal::Program ConeQuery(int lo, int hi) {
  mal::Program p;
  const int ra = p.Bind("sky", "ra");
  const int cands = p.BindCandidates("sky");
  const int sel = p.RangeSelect(ra, cands, Value::Int(lo), Value::Int(hi));
  const int mag = p.Bind("sky", "mag");
  const int proj = p.Project(sel, mag);
  const int avg = p.Aggr(mal::OpCode::kAggrAvg, proj, -1, -1);
  p.Result(avg, "avg_mag");
  return p;
}

/// The zipf-repeated query log: rank 0 templates recur most.
std::vector<mal::Program> MakeLog(uint64_t seed) {
  ZipfGenerator zipf(kTemplates, 1.0, seed);
  Rng rng(seed + 1);
  std::vector<std::pair<int, int>> templates;
  for (size_t t = 0; t < kTemplates; ++t) {
    const int lo = static_cast<int>(rng.Uniform(350000));
    templates.push_back({lo, lo + 2000});
  }
  std::vector<mal::Program> log;
  log.reserve(kLogLength);
  for (size_t i = 0; i < kLogLength; ++i) {
    const auto& [lo, hi] = templates[zipf.Next()];
    log.push_back(ConeQuery(lo, hi));
  }
  return log;
}

void RunLog(benchmark::State& state, recycle::Recycler* rec) {
  auto catalog = SharedCatalog();
  auto log = MakeLog(99);
  mal::Interpreter interp(catalog.get(), rec);
  size_t recycled = 0;
  for (auto _ : state) {
    if (rec != nullptr) rec->Clear();
    recycled = 0;
    for (const mal::Program& q : log) {
      mal::RunStats stats;
      auto r = interp.Run(q, &stats);
      benchmark::DoNotOptimize(r.ok());
      recycled += stats.recycled;
    }
  }
  state.SetItemsProcessed(state.iterations() * kLogLength);
  state.counters["recycled_instrs"] = static_cast<double>(recycled);
  if (rec != nullptr) {
    state.counters["cache_MB"] =
        static_cast<double>(rec->stats().bytes) / (1 << 20);
  }
}

void BM_NoRecycling(benchmark::State& state) { RunLog(state, nullptr); }
BENCHMARK(BM_NoRecycling)->Unit(benchmark::kMillisecond);

void BM_RecyclerLru(benchmark::State& state) {
  recycle::Recycler rec(64 << 20, recycle::Policy::kLru);
  RunLog(state, &rec);
}
BENCHMARK(BM_RecyclerLru)->Unit(benchmark::kMillisecond);

void BM_RecyclerBenefit(benchmark::State& state) {
  recycle::Recycler rec(64 << 20, recycle::Policy::kBenefit);
  RunLog(state, &rec);
}
BENCHMARK(BM_RecyclerBenefit)->Unit(benchmark::kMillisecond);

void BM_RecyclerRandom(benchmark::State& state) {
  recycle::Recycler rec(64 << 20, recycle::Policy::kRandom);
  RunLog(state, &rec);
}
BENCHMARK(BM_RecyclerRandom)->Unit(benchmark::kMillisecond);

// Tight-budget variant: eviction policy differences only matter when the
// cache cannot hold everything.
void BM_RecyclerLruTight(benchmark::State& state) {
  recycle::Recycler rec(1 << 20, recycle::Policy::kLru);
  RunLog(state, &rec);
}
BENCHMARK(BM_RecyclerLruTight)->Unit(benchmark::kMillisecond);

void BM_RecyclerBenefitTight(benchmark::State& state) {
  recycle::Recycler rec(1 << 20, recycle::Policy::kBenefit);
  RunLog(state, &rec);
}
BENCHMARK(BM_RecyclerBenefitTight)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
