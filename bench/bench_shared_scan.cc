// E15 (§5): shared-scan execution, measured for real (not simulated —
// compare bench_cooperative_scan.cc, which drives the policy oracle).
// N closed-loop threads issue overlapping full-column range scans
// through one sql::Engine with a SharedScanScheduler attached; each
// in-flight pass is shared by everyone scanning the table, so the
// physical chunk loads per query should fall towards 1/N as concurrency
// grows. The N=1 point doubles as the independent baseline: a lone scan
// runs the direct kernel path and pays the full pass itself.
//
// Counters: loads_per_query (physical chunk loads, direct + driven,
// divided by queries), shared_fraction (scans that attached to another
// query's pass), qps, p50/p99 per-query latency.
//
// MAMMOTH_BENCH_ROWS overrides the table size (default 32 chunks of
// 64Ki rows, ~2.1M rows).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/table.h"
#include "parallel/exec_context.h"
#include "parallel/task_pool.h"
#include "scan/shared_scan.h"
#include "sql/engine.h"

namespace {

using namespace mammoth;

constexpr size_t kChunkRows = size_t{1} << 16;

size_t BenchRows() {
  const char* env = std::getenv("MAMMOTH_BENCH_ROWS");
  return env != nullptr ? std::strtoull(env, nullptr, 10)
                        : 32 * kChunkRows + 777;
}

// One immutable table shared by every benchmark arg (read-only: no DML
// runs here, so reusing the TablePtr across engines is safe).
TablePtr ScanTable() {
  static TablePtr table = [] {
    const size_t nrows = BenchRows();
    BatPtr id = Bat::New(PhysType::kInt64);
    id->Resize(nrows);
    int64_t* idp = id->MutableTailData<int64_t>();
    BatPtr val = Bat::New(PhysType::kInt64);
    val->Resize(nrows);
    int64_t* valp = val->MutableTailData<int64_t>();
    Rng rng(20260807);
    for (size_t i = 0; i < nrows; ++i) {
      idp[i] = static_cast<int64_t>(i);
      valp[i] = static_cast<int64_t>(rng.Next() % 10000);
    }
    auto t = Table::FromColumns(
        "metrics",
        {{"id", PhysType::kInt64}, {"val", PhysType::kInt64}},
        {id, val});
    if (!t.ok()) std::abort();
    return *t;
  }();
  return table;
}

// Heavily overlapping ranges over val's [0, 10000) domain; aggregates
// keep the result a single row so the scan dominates the measurement.
std::string ScanQuery(int i) {
  const int lo = 250 * (i % 4);
  const int hi = lo + 8500;
  return "SELECT COUNT(*), SUM(val) FROM metrics WHERE val >= " +
         std::to_string(lo) + " AND val <= " + std::to_string(hi);
}

void BM_SharedScanConcurrency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kQueriesPerThread = 4;

  sql::Engine engine;
  if (!engine.catalog()->Register(ScanTable()).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  scan::SharedScanConfig cfg;
  cfg.chunk_rows = kChunkRows;
  cfg.min_share_rows = kChunkRows;
  scan::SharedScanScheduler sched(cfg);
  engine.AttachSharedScans(&sched);
  parallel::TaskPool pool(parallel::DefaultThreadCount());
  parallel::ExecContext ctx(&pool);

  std::vector<double> latencies_ms;
  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  uint64_t loads = 0;      // physical: driven loads + direct passes
  uint64_t attached = 0;
  uint64_t direct = 0;
  for (auto _ : state) {
    const scan::SharedScanStats before = sched.stats();
    std::vector<std::vector<double>> per_thread(n);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        per_thread[t].reserve(kQueriesPerThread);
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const auto q0 = std::chrono::steady_clock::now();
          if (!engine.Execute(ScanQuery(t + q), ctx).ok()) {
            failed.store(true);
          }
          per_thread[t].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - q0)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    state.SetIterationTime(seconds);
    total_queries += static_cast<int64_t>(n) * kQueriesPerThread;
    const scan::SharedScanStats after = sched.stats();
    loads += (after.chunks_loaded - before.chunks_loaded) +
             (after.chunks_direct - before.chunks_direct);
    attached += after.scans_attached - before.scans_attached;
    direct += after.scans_direct - before.scans_direct;
    for (auto& v : per_thread) {
      latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
    }
  }
  if (failed.load()) state.SkipWithError("query failed");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  auto percentile = [&](double p) {
    if (latencies_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["loads_per_query"] =
      total_queries == 0
          ? 0.0
          : static_cast<double>(loads) / static_cast<double>(total_queries);
  state.counters["shared_fraction"] =
      attached + direct == 0
          ? 0.0
          : static_cast<double>(attached) /
                static_cast<double>(attached + direct);
  state.counters["p50_ms"] = percentile(0.50);
  state.counters["p99_ms"] = percentile(0.99);
  state.counters["concurrency"] = n;
}

BENCHMARK(BM_SharedScanConcurrency)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
