#ifndef MAMMOTH_BENCH_WORKLOADS_H_
#define MAMMOTH_BENCH_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/bat.h"

namespace mammoth::bench {

/// Synthetic workload generators shared by the experiment harnesses
/// (DESIGN.md §3: substitutions for TPC-H/Skyserver-style data).

inline BatPtr UniformInt32(size_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int32_t>(rng.Uniform(bound));
  }
  return b;
}

inline BatPtr UniformInt64(size_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt64);
  b->Resize(n);
  int64_t* v = b->MutableTailData<int64_t>();
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int64_t>(rng.Uniform(bound));
  }
  return b;
}

inline BatPtr UniformDouble(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kDouble);
  b->Resize(n);
  double* v = b->MutableTailData<double>();
  for (size_t i = 0; i < n; ++i) v[i] = rng.NextDouble();
  return b;
}

inline BatPtr ZipfInt32(size_t n, uint64_t domain, double theta,
                        uint64_t seed) {
  ZipfGenerator zipf(domain, theta, seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int32_t>(zipf.Next());
  return b;
}

inline BatPtr SortedInt32(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  int32_t* v = b->MutableTailData<int32_t>();
  int32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int32_t>(rng.Uniform(3));
    v[i] = cur;
  }
  b->mutable_props().sorted = true;
  return b;
}

/// A foreign-key style join pair: every left key hits exactly one right row.
struct JoinPair {
  BatPtr left;
  BatPtr right;
};

inline JoinPair FkJoinPair(size_t left_n, size_t right_n, uint64_t seed) {
  Rng rng(seed);
  JoinPair p;
  p.right = Bat::New(PhysType::kInt32);
  p.right->Resize(right_n);
  int32_t* rv = p.right->MutableTailData<int32_t>();
  for (size_t i = 0; i < right_n; ++i) rv[i] = static_cast<int32_t>(i);
  // Shuffle the right side so it is not accidentally sorted.
  for (size_t i = right_n; i > 1; --i) {
    std::swap(rv[i - 1], rv[rng.Uniform(i)]);
  }
  p.left = Bat::New(PhysType::kInt32);
  p.left->Resize(left_n);
  int32_t* lv = p.left->MutableTailData<int32_t>();
  for (size_t i = 0; i < left_n; ++i) {
    lv[i] = static_cast<int32_t>(rng.Uniform(right_n));
  }
  return p;
}

}  // namespace mammoth::bench

#endif  // MAMMOTH_BENCH_WORKLOADS_H_
