// Replication benchmarks, all in-process over loopback: (1) write-storm
// commit throughput on a durable primary as the attached replica count
// sweeps 0/1/2 — with semi-sync on, the delta is the price of waiting
// for a replica to replay before acking; (2) read qps served by a
// caught-up replica (the reason read replicas exist); (3) catch-up
// bandwidth: how fast a fresh replica drains a pre-accumulated WAL
// backlog, in MB/s of log stream. BENCH_replication.json carries all
// three.
//
// MAMMOTH_BENCH_ROWS scales the catch-up backlog (default 20000 rows).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"

namespace {

using namespace mammoth;

size_t BenchRows() {
  const char* env = std::getenv("MAMMOTH_BENCH_ROWS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 20000;
}

struct Cluster {
  std::string dir;
  std::unique_ptr<server::Server> primary;
  std::vector<std::unique_ptr<server::Server>> replicas;

  ~Cluster() {
    for (auto it = replicas.rbegin(); it != replicas.rend(); ++it) {
      (*it)->Stop();
    }
    if (primary != nullptr) primary->Stop();
    std::filesystem::remove_all(dir);
  }

  bool Start(const std::string& name, int nreplicas) {
    dir = "bench_repl_" + name;
    std::filesystem::remove_all(dir);
    server::ServerConfig config;
    config.port = 0;
    config.max_sessions = 64;
    config.admission.max_inflight = 8;
    config.admission.queue_timeout_ms = 60000;
    config.db_dir = dir + "/primary";
    config.db.wal.checkpoint_log_bytes = 0;  // measure shipping, not GC
    primary = std::make_unique<server::Server>(config);
    if (!primary->Start().ok()) return false;
    for (int i = 0; i < nreplicas; ++i) {
      if (!AddReplica()) return false;
    }
    return true;
  }

  bool AddReplica() {
    server::ServerConfig config;
    config.port = 0;
    config.max_sessions = 64;
    config.admission.max_inflight = 8;
    config.admission.queue_timeout_ms = 60000;
    config.replicate_from =
        "127.0.0.1:" + std::to_string(primary->port());
    replicas.push_back(std::make_unique<server::Server>(config));
    return replicas.back()->Start().ok();
  }

  /// Blocks until every replica has replayed the primary's durable LSN
  /// and the acks landed (lag reads zero).
  bool DrainLag(int timeout_ms = 60000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (const auto& replica : replicas) {
      while (replica->stats().repl_replayed_lsn !=
                 primary->stats().wal.durable_lsn ||
             primary->stats().repl_lag_bytes != 0) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return true;
  }
};

void BM_ReplWriteStorm(benchmark::State& state) {
  const int nreplicas = static_cast<int>(state.range(0));
  constexpr int kWriters = 4;
  constexpr int kTxnsPerWriter = 32;

  Cluster cluster;
  if (!cluster.Start("storm_" + std::to_string(nreplicas), nreplicas)) {
    state.SkipWithError("cluster failed to start");
    return;
  }
  {
    auto admin =
        server::Client::Connect("127.0.0.1", cluster.primary->port());
    if (!admin.ok() ||
        !admin->Query("CREATE TABLE t (id BIGINT, v BIGINT)").ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }

  std::vector<server::Client> conns;
  conns.reserve(kWriters);
  for (int i = 0; i < kWriters; ++i) {
    auto c = server::Client::Connect("127.0.0.1", cluster.primary->port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    conns.push_back(std::move(*c));
  }

  std::atomic<bool> failed{false};
  std::atomic<int64_t> next_id{0};
  int64_t total_txns = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&, t] {
        for (int q = 0; q < kTxnsPerWriter; ++q) {
          const int64_t id = next_id.fetch_add(1);
          if (!conns[t]
                   .Query("INSERT INTO t VALUES (" + std::to_string(id) +
                          ", " + std::to_string(id * 131) + ")")
                   .ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_txns += static_cast<int64_t>(kWriters) * kTxnsPerWriter;
  }
  if (failed.load() || !cluster.DrainLag()) {
    state.SkipWithError("storm failed or lag never drained");
    return;
  }

  state.counters["tps"] = benchmark::Counter(
      static_cast<double>(total_txns), benchmark::Counter::kIsRate);
  state.counters["replicas"] = nreplicas;
  state.counters["lag_bytes"] =
      static_cast<double>(cluster.primary->stats().repl_lag_bytes);
}

BENCHMARK(BM_ReplWriteStorm)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_ReplReplicaReadQps(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  constexpr int kQueriesPerReader = 16;

  Cluster cluster;
  if (!cluster.Start("reads", 1)) {
    state.SkipWithError("cluster failed to start");
    return;
  }
  {
    auto admin =
        server::Client::Connect("127.0.0.1", cluster.primary->port());
    if (!admin.ok() ||
        !admin->Query("CREATE TABLE metrics (id INT, value INT)").ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    constexpr size_t kBatch = 1000;
    const size_t rows = BenchRows();
    for (size_t base = 0; base < rows; base += kBatch) {
      std::string insert = "INSERT INTO metrics VALUES ";
      const size_t end = std::min(base + kBatch, rows);
      for (size_t i = base; i < end; ++i) {
        if (i > base) insert += ", ";
        insert += "(" + std::to_string(i) + ", " +
                  std::to_string((i * 131) % 10000) + ")";
      }
      if (!admin->Query(insert).ok()) {
        state.SkipWithError("populate failed");
        return;
      }
    }
  }
  if (!cluster.DrainLag()) {
    state.SkipWithError("lag never drained");
    return;
  }

  std::vector<server::Client> conns;
  conns.reserve(readers);
  for (int i = 0; i < readers; ++i) {
    auto c = server::Client::Connect("127.0.0.1",
                                     cluster.replicas[0]->port());
    if (!c.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    conns.push_back(std::move(*c));
  }

  const std::vector<std::string> mix = {
      "SELECT COUNT(*) FROM metrics WHERE value >= 2500 AND value <= 7500",
      "SELECT SUM(value) FROM metrics",
      "SELECT id FROM metrics WHERE value < 200 ORDER BY id LIMIT 50",
  };
  std::atomic<bool> failed{false};
  int64_t total_queries = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < readers; ++t) {
      threads.emplace_back([&, t] {
        for (int q = 0; q < kQueriesPerReader; ++q) {
          if (!conns[t].Query(mix[(t + q) % mix.size()]).ok()) {
            failed.store(true);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    total_queries += static_cast<int64_t>(readers) * kQueriesPerReader;
  }
  if (failed.load()) state.SkipWithError("query failed");

  state.counters["replica_qps"] = benchmark::Counter(
      static_cast<double>(total_queries), benchmark::Counter::kIsRate);
  state.counters["readers"] = readers;
}

BENCHMARK(BM_ReplReplicaReadQps)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// Catch-up bandwidth: the primary accumulates a WAL backlog first; the
/// timed region is a fresh replica joining and draining it to zero lag.
/// mb_per_s is log-stream bytes over wall time.
void BM_ReplCatchUp(benchmark::State& state) {
  Cluster cluster;
  if (!cluster.Start("catchup", 0)) {
    state.SkipWithError("cluster failed to start");
    return;
  }
  {
    auto admin =
        server::Client::Connect("127.0.0.1", cluster.primary->port());
    if (!admin.ok() ||
        !admin->Query("CREATE TABLE t (id BIGINT, v BIGINT)").ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    constexpr size_t kBatch = 500;
    const size_t rows = BenchRows();
    for (size_t base = 0; base < rows; base += kBatch) {
      std::string insert = "INSERT INTO t VALUES ";
      const size_t end = std::min(base + kBatch, rows);
      for (size_t i = base; i < end; ++i) {
        if (i > base) insert += ", ";
        insert += "(" + std::to_string(i) + ", " +
                  std::to_string(i * 7919) + ")";
      }
      if (!admin->Query(insert).ok()) {
        state.SkipWithError("backlog failed");
        return;
      }
    }
  }
  const uint64_t backlog = cluster.primary->stats().wal.durable_lsn;

  double total_seconds = 0;
  uint64_t total_bytes = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    if (!cluster.AddReplica() || !cluster.DrainLag()) {
      state.SkipWithError("catch-up failed");
      return;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    state.SetIterationTime(seconds);
    total_seconds += seconds;
    total_bytes += backlog;
    // A fresh subscriber next iteration: drop the caught-up one.
    cluster.replicas.back()->Stop();
    cluster.replicas.pop_back();
  }

  state.counters["backlog_mb"] =
      static_cast<double>(backlog) / (1024.0 * 1024.0);
  state.counters["mb_per_s"] =
      total_seconds == 0
          ? 0.0
          : (static_cast<double>(total_bytes) / (1024.0 * 1024.0)) /
                total_seconds;
}

BENCHMARK(BM_ReplCatchUp)
    ->Iterations(3)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
