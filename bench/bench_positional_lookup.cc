// E1 (§3): virtual-OID positional lookup is an O(1) array read and beats
// pointer-based B-tree lookup per CPU cost; CSS-trees narrow but do not
// close the gap; hash indexes trade memory for near-O(1).
//
// Series reported: ns/lookup for BAT positional vs B+-tree vs CSS-tree vs
// hash index, over growing table sizes.

#include <benchmark/benchmark.h>

#include <numeric>

#include "common/rng.h"
#include "index/btree.h"
#include "index/css_tree.h"
#include "index/hash_index.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kLookups = 1 << 16;

std::vector<uint64_t> Probes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(kLookups);
  for (auto& p : out) p = rng.Uniform(n);
  return out;
}

void BM_PositionalArray(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  BatPtr column = bench::UniformInt64(n, 1u << 30, 1);
  const auto probes = Probes(n, 2);
  const int64_t* tail = column->TailData<int64_t>();
  int64_t sink = 0;
  for (auto _ : state) {
    for (uint64_t p : probes) {
      // The paper's O(1) lookup: head OID -> array index.
      sink += tail[p];
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kLookups);
}
BENCHMARK(BM_PositionalArray)->Arg(1 << 20)->Arg(1 << 22)->Arg(1 << 24);

void BM_BPlusTreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  index::BPlusTree tree;
  for (size_t i = 0; i < n; ++i) {
    tree.Insert(static_cast<int64_t>(i), static_cast<Oid>(i));
  }
  const auto probes = Probes(n, 2);
  uint64_t sink = 0;
  for (auto _ : state) {
    for (uint64_t p : probes) {
      sink += tree.LookupFirst(static_cast<int64_t>(p));
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kLookups);
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1 << 20)->Arg(1 << 22)->Arg(1 << 24);

void BM_CssTreeLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  index::CssTree tree(keys.data(), n);
  const auto probes = Probes(n, 2);
  uint64_t sink = 0;
  for (auto _ : state) {
    for (uint64_t p : probes) {
      sink += tree.Find(static_cast<int64_t>(p));
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kLookups);
}
BENCHMARK(BM_CssTreeLookup)->Arg(1 << 20)->Arg(1 << 22)->Arg(1 << 24);

void BM_HashIndexLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  index::HashIndex idx(keys.data(), n);
  const auto probes = Probes(n, 2);
  uint64_t sink = 0;
  for (auto _ : state) {
    for (uint64_t p : probes) {
      sink += idx.LookupFirst(static_cast<int64_t>(p));
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kLookups);
}
BENCHMARK(BM_HashIndexLookup)->Arg(1 << 20)->Arg(1 << 22)->Arg(1 << 24);

}  // namespace
}  // namespace mammoth
