// E16 (design ablations): the cost of the candidate-list machinery itself.
//   (a) range select on a *sorted* tail (binary search -> dense, payload-
//       free candidate BAT) vs the same select on unsorted data (scan ->
//       materialized OID list) — the property-driven algorithm selection of
//       §3.1;
//   (b) projection through dense vs materialized candidate lists;
//   (c) a chain of two theta-selects vs the fused range select the MAL
//       optimizer produces (SelectFusion's payoff).

#include <benchmark/benchmark.h>

#include "core/project.h"
#include "core/select.h"
#include "core/sort.h"
#include "common/rng.h"
#include "index/zonemap.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 4 << 20;
constexpr int64_t kDomain = 1 << 30;
constexpr int64_t kLo = kDomain / 4;
constexpr int64_t kHi = kDomain / 2;  // ~25% selectivity

const BatPtr& Unsorted() {
  static BatPtr b = bench::UniformInt32(kRows, kDomain, 7);
  return b;
}

const BatPtr& Sorted() {
  static BatPtr b = [] {
    BatPtr s = Unsorted()->Clone();
    auto r = algebra::Sort(s);
    return r.ok() ? r->sorted : s;
  }();
  return b;
}

const BatPtr& Payload() {
  static BatPtr b = bench::UniformInt32(kRows, 1u << 30, 8);
  return b;
}

void BM_SelectSortedBinarySearch(benchmark::State& state) {
  const BatPtr& sorted = Sorted();  // one-time setup outside the timing loop
  for (auto _ : state) {
    auto r = algebra::RangeSelect(sorted, nullptr, Value::Int(kLo),
                                  Value::Int(kHi));
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SelectSortedBinarySearch)->Unit(benchmark::kMillisecond);

void BM_SelectUnsortedScan(benchmark::State& state) {
  const BatPtr& unsorted = Unsorted();
  for (auto _ : state) {
    auto r = algebra::RangeSelect(unsorted, nullptr, Value::Int(kLo),
                                  Value::Int(kHi));
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SelectUnsortedScan)->Unit(benchmark::kMillisecond);

void BM_ProjectThroughDenseCands(benchmark::State& state) {
  auto cands = algebra::RangeSelect(Sorted(), nullptr, Value::Int(kLo),
                                    Value::Int(kHi));
  const BatPtr& payload = Payload();
  for (auto _ : state) {
    auto r = algebra::Project(*cands, payload);
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * (*cands)->Count());
  state.counters["dense"] = (*cands)->IsDenseTail() ? 1 : 0;
}
BENCHMARK(BM_ProjectThroughDenseCands)->Unit(benchmark::kMillisecond);

void BM_ProjectThroughMaterializedCands(benchmark::State& state) {
  auto cands = algebra::RangeSelect(Sorted(), nullptr, Value::Int(kLo),
                                    Value::Int(kHi));
  BatPtr materialized = (*cands)->Clone();
  materialized->MaterializeDense();
  const BatPtr& payload = Payload();
  for (auto _ : state) {
    auto r = algebra::Project(materialized, payload);
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * materialized->Count());
}
BENCHMARK(BM_ProjectThroughMaterializedCands)->Unit(benchmark::kMillisecond);

void BM_SelectChainUnfused(benchmark::State& state) {
  const BatPtr& unsorted = Unsorted();
  for (auto _ : state) {
    auto ge = algebra::ThetaSelect(unsorted, nullptr, Value::Int(kLo),
                                   CmpOp::kGe);
    auto both =
        algebra::ThetaSelect(unsorted, *ge, Value::Int(kHi), CmpOp::kLe);
    benchmark::DoNotOptimize(both->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SelectChainUnfused)->Unit(benchmark::kMillisecond);

void BM_SelectFusedRange(benchmark::State& state) {
  const BatPtr& unsorted = Unsorted();
  for (auto _ : state) {
    auto r = algebra::RangeSelect(unsorted, nullptr, Value::Int(kLo),
                                  Value::Int(kHi));
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_SelectFusedRange)->Unit(benchmark::kMillisecond);

const BatPtr& Clustered() {
  static BatPtr b = [] {
    Rng rng(77);
    BatPtr c = Bat::New(PhysType::kInt32);
    for (size_t i = 0; i < kRows; ++i) {
      c->Append<int32_t>(static_cast<int32_t>(i / 4 + rng.Uniform(64)));
    }
    return c;
  }();
  return b;
}

// Zone maps: block skipping pays on clustered data and costs (almost)
// nothing to maintain — the "not all data is equally important" family of
// light-weight partial indexes (§2).
void BM_ZoneMapSelectClustered(benchmark::State& state) {
  static auto zm = index::ZoneMap::Build(Clustered(), 1024);
  const int64_t lo = kRows / 8, hi = lo + kRows / 256;
  for (auto _ : state) {
    auto r = (*zm).RangeSelect(Value::Int(lo), Value::Int(hi));
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["blocks_touched"] = static_cast<double>(
      (*zm).BlocksTouched(Value::Int(lo), Value::Int(hi)));
  state.counters["blocks_total"] = static_cast<double>((*zm).NumBlocks());
}
BENCHMARK(BM_ZoneMapSelectClustered)->Unit(benchmark::kMillisecond);

void BM_PlainScanSelectClustered(benchmark::State& state) {
  const BatPtr& clustered = Clustered();
  const int64_t lo = kRows / 8, hi = lo + kRows / 256;
  for (auto _ : state) {
    auto r = algebra::RangeSelect(clustered, nullptr, Value::Int(lo),
                                  Value::Int(hi));
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_PlainScanSelectClustered)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
