// E3 (Figure 2 + §4.2): radix-clustering time vs radix bits B and pass
// count P. Single-pass clustering degrades once 2^B exceeds the TLB entry
// count / cache line budget; multi-pass keeps the number of concurrently
// written regions small and stays near memory bandwidth.
//
// Series: ms per clustering of 4M tuples, B in {4..16}, P in {1,2,3}.

#include <benchmark/benchmark.h>

#include "join/radix_cluster.h"
#include "workloads.h"

namespace mammoth {
namespace {

constexpr size_t kTuples = 4 << 20;

void RunCluster(benchmark::State& state, int passes) {
  const int bits = static_cast<int>(state.range(0));
  BatPtr column = bench::UniformInt32(kTuples, 1u << 28, 31);
  auto base = radix::FromBat<int32_t>(*column);
  const auto plan = radix::SplitBits(bits, passes);
  for (auto _ : state) {
    radix::RadixTable<int32_t> t = *base;  // fresh copy each round
    radix::RadixCluster<int32_t>(&t, plan);
    benchmark::DoNotOptimize(t.bounds.data());
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
  state.counters["clusters"] = static_cast<double>(1u << bits);
  state.counters["passes"] = passes;
}

void BM_RadixCluster1Pass(benchmark::State& state) { RunCluster(state, 1); }
void BM_RadixCluster2Pass(benchmark::State& state) { RunCluster(state, 2); }
void BM_RadixCluster3Pass(benchmark::State& state) { RunCluster(state, 3); }

BENCHMARK(BM_RadixCluster1Pass)
    ->DenseRange(4, 16, 4)->Arg(18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RadixCluster2Pass)
    ->DenseRange(4, 16, 4)->Arg(18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RadixCluster3Pass)
    ->DenseRange(4, 16, 4)->Arg(18)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
