// E4 (§4.1-4.2): simple bucket-chained hash join vs radix-partitioned hash
// join. Once the inner side outgrows the caches every probe of the simple
// join misses; partitioning first makes each partition cache-resident.
// Claim: "easily an order of magnitude" improvement on large inputs.
//
// Series: join of |L| = |R| = N for N in {256K .. 8M}, both algorithms,
// plus the partitioned join at the model-suggested radix bits.

#include <benchmark/benchmark.h>

#include "core/join.h"
#include "join/partitioned_hash_join.h"
#include "workloads.h"

namespace mammoth {
namespace {

void BM_SimpleHashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pair = bench::FkJoinPair(n, n, 7);
  for (auto _ : state) {
    auto r = algebra::HashJoin(pair.left, pair.right);
    benchmark::DoNotOptimize(r->left.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimpleHashJoin)
    ->Arg(256 << 10)->Arg(1 << 20)->Arg(4 << 20)->Arg(8 << 20)
    ->Arg(32 << 20)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedHashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto pair = bench::FkJoinPair(n, n, 7);
  radix::PartitionedJoinOptions opt;  // bits auto-tuned from cache size
  radix::PartitionedJoinStats stats;
  for (auto _ : state) {
    auto r = radix::PartitionedHashJoin(pair.left, pair.right, opt, &stats);
    benchmark::DoNotOptimize(r->left.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["radix_bits"] = stats.bits;
  state.counters["passes"] = stats.passes;
}
BENCHMARK(BM_PartitionedHashJoin)
    ->Arg(256 << 10)->Arg(1 << 20)->Arg(4 << 20)->Arg(8 << 20)
    ->Arg(32 << 20)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Sensitivity: fixed 4M join across explicit radix-bit settings (the
// U-shape: too few bits -> cache thrashing in the join; too many -> the
// clustering itself thrashes).
void BM_PartitionedJoinBitsSweep(benchmark::State& state) {
  const size_t n = 4 << 20;
  auto pair = bench::FkJoinPair(n, n, 7);
  radix::PartitionedJoinOptions opt;
  opt.bits = static_cast<int>(state.range(0));
  opt.passes = 2;
  for (auto _ : state) {
    auto r = radix::PartitionedHashJoin(pair.left, pair.right, opt);
    benchmark::DoNotOptimize(r->left.get());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionedJoinBitsSweep)
    ->DenseRange(2, 16, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mammoth
