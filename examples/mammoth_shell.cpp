// An interactive mini-monet shell over the SQL front-end: type SQL
// statements terminated by ';'. Dot-commands expose the architecture:
//
//   .plan SELECT ...;   show the optimized MAL program instead of running
//   .mal <file>         execute a MAL program from a file (see mal/parser.h)
//   .tables             list catalog tables
//   .save <dir>         persist the catalog    .load <dir>  restore it
//   .recycler <MB>      attach a recycler      .stats       recycler stats
//   .quit
//
// Works interactively or scripted:  ./build/examples/mammoth_shell < run.sql
//
// With `--connect host:port` the shell becomes a wire-protocol client of
// a running mammoth_server instead of embedding an engine: statements
// travel as Query frames, results come back as columnar Result frames
// (`SERVER STATUS` shows the server's counters). Dot-commands other than
// .help/.quit are local-engine features and are unavailable remotely.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/timer.h"
#include "core/persist.h"
#include "mal/parser.h"
#include "recycle/recycler.h"
#include "server/client.h"
#include "sql/engine.h"
#include "sql/parser.h"

namespace {

using namespace mammoth;

void PrintStatus(const Status& status) {
  if (!status.ok()) std::printf("!! %s\n", status.ToString().c_str());
}

int RunRemote(const std::string& target) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects host:port\n");
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  auto client = server::Client::Connect(
      host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "!! connect %s failed: %s\n", target.c_str(),
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s (server '%s', session %llu) — "
              "SQL ends with ';', '.quit' exits\n",
              target.c_str(), client->hello().server_name.c_str(),
              static_cast<unsigned long long>(client->hello().session_id));
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "mammoth> " : "    ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (line.rfind(".quit", 0) == 0 || line.rfind(".exit", 0) == 0) break;
      std::printf(".quit — everything else runs server-side "
                  "(try SERVER STATUS;)\n");
      continue;
    }
    buffer += line + "\n";
    if (line.find(';') == std::string::npos) continue;
    buffer = buffer.substr(0, buffer.find(';'));

    WallTimer timer;
    auto result = client->Query(buffer);
    buffer.clear();
    if (!result.ok()) {
      PrintStatus(result.status());
      if (!client->connected()) return 1;  // transport gone
      continue;
    }
    if (!result->names.empty()) {
      std::printf("%s", result->ToText(40).c_str());
    }
    std::printf("-- %.2f ms (%zu rows)\n", timer.ElapsedMillis(),
                result->RowCount());
  }
  client->Close();
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--connect" && i + 1 < argc) {
      return RunRemote(argv[i + 1]);
    }
  }

  sql::Engine engine;
  std::unique_ptr<recycle::Recycler> recycler;

  std::printf("MammothDB shell — SQL statements end with ';', "
              "'.help' for commands\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "mammoth> " : "    ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    // Dot commands act immediately.
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      std::istringstream iss(line);
      std::string cmd;
      iss >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(".plan <sql>; | .mal <file> | .tables | .save <dir> | "
                    ".load <dir> | .recycler <MB> | .stats | .quit\n");
      } else if (cmd == ".tables") {
        for (const std::string& name : engine.catalog()->TableNames()) {
          auto t = engine.catalog()->Get(name);
          std::printf("%s (%zu rows)\n", name.c_str(),
                      t.ok() ? (*t)->VisibleRowCount() : 0);
        }
      } else if (cmd == ".save" || cmd == ".load") {
        std::string dir;
        iss >> dir;
        if (dir.empty()) {
          std::printf("!! usage: %s <dir>\n", cmd.c_str());
        } else if (cmd == ".save") {
          PrintStatus(SaveCatalog(*engine.catalog(), dir));
        } else {
          auto loaded = LoadCatalog(dir);
          if (loaded.ok()) {
            for (const std::string& name : (*loaded)->TableNames()) {
              auto t = (*loaded)->Get(name);
              if (t.ok()) PrintStatus(engine.catalog()->Register(*t));
            }
            std::printf("loaded %zu table(s)\n",
                        (*loaded)->TableNames().size());
          } else {
            PrintStatus(loaded.status());
          }
        }
      } else if (cmd == ".recycler") {
        size_t mb = 64;
        iss >> mb;
        recycler = std::make_unique<recycle::Recycler>(mb << 20);
        engine.AttachRecycler(recycler.get());
        std::printf("recycler attached (%zu MB, LRU)\n", mb);
      } else if (cmd == ".stats") {
        if (recycler == nullptr) {
          std::printf("no recycler attached\n");
        } else {
          const auto& s = recycler->stats();
          std::printf("hits=%zu misses=%zu subsumed=%zu entries=%zu "
                      "bytes=%zu saved=%.3fs\n",
                      s.hits, s.misses, s.subsumption_hits, s.entries,
                      s.bytes, s.seconds_saved);
        }
      } else if (cmd == ".mal") {
        std::string path;
        iss >> path;
        std::ifstream f(path);
        if (!f) {
          std::printf("!! cannot open %s\n", path.c_str());
          continue;
        }
        std::stringstream text;
        text << f.rdbuf();
        auto prog = mal::ParseMal(text.str());
        if (!prog.ok()) {
          PrintStatus(prog.status());
          continue;
        }
        mal::Interpreter interp(engine.catalog(), recycler.get());
        auto r = interp.Run(*prog);
        if (r.ok()) {
          std::printf("%s", r->ToText().c_str());
        } else {
          PrintStatus(r.status());
        }
      } else if (cmd == ".plan") {
        std::string rest;
        std::getline(iss, rest);
        while (rest.find(';') == std::string::npos &&
               std::getline(std::cin, line)) {
          rest += "\n" + line;
        }
        rest = rest.substr(0, rest.find(';'));
        auto stmt = sql::Parse(rest);
        if (!stmt.ok()) {
          PrintStatus(stmt.status());
          continue;
        }
        auto* sel = std::get_if<sql::SelectStmt>(&*stmt);
        if (sel == nullptr) {
          std::printf("!! .plan takes a SELECT\n");
          continue;
        }
        auto prog = engine.Compile(*sel);
        if (!prog.ok()) {
          PrintStatus(prog.status());
          continue;
        }
        const auto report = mal::OptimizePipeline(&*prog);
        std::printf("%s-- %s\n", prog->ToString().c_str(),
                    report.ToString().c_str());
      } else {
        std::printf("!! unknown command %s\n", cmd.c_str());
      }
      continue;
    }

    buffer += line + "\n";
    if (line.find(';') == std::string::npos) continue;

    WallTimer timer;
    auto result = engine.Execute(buffer);
    buffer.clear();
    if (!result.ok()) {
      PrintStatus(result.status());
      continue;
    }
    if (!result->names.empty()) {
      std::printf("%s", result->ToText(40).c_str());
    }
    std::printf("-- %.2f ms (%zu MAL instructions, %zu recycled)\n",
                timer.ElapsedMillis(), engine.last_run_stats().instructions,
                engine.last_run_stats().recycled);
  }
  std::printf("\n");
  return 0;
}
