// The unified hardware model at work (§4.4): calibrates the machine's
// memory hierarchy at runtime, prints the measured profile, and then lets
// the cost model plan a radix-partitioned join — comparing its predicted
// best (bits, passes) against a real execution of several configurations.
//
//   ./build/examples/hardware_probe

#include <cstdio>

#include "common/rng.h"
#include "common/timer.h"
#include "cost/calibrator.h"
#include "cost/model.h"
#include "join/partitioned_hash_join.h"

namespace {

using namespace mammoth;

BatPtr RandomInts(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  for (size_t i = 0; i < n; ++i) {
    b->MutableTailData<int32_t>()[i] = static_cast<int32_t>(rng.Next());
  }
  return b;
}

}  // namespace

int main() {
  std::printf("Calibrating memory hierarchy (pointer-chase ladder)...\n");
  for (size_t kb : {16, 64, 256, 1024, 4096, 16384, 65536}) {
    const double ns = cost::MeasureRandomLatencyNs(kb << 10, 1 << 18);
    std::printf("  %6zu KB working set: %6.1f ns/dependent load\n", kb, ns);
  }

  const cost::HardwareProfile hw = cost::Calibrate();
  std::printf("\nDerived profile:\n%s\n", hw.ToString().c_str());

  const size_t n = 4 << 20;
  std::printf("Planning a %zu x %zu int32 join with the cost model...\n",
              n, n);
  const cost::RadixPlan plan = cost::PlanRadixJoin(hw, n, n, 4);
  std::printf("  model says: B=%d bits in %d passes (predicted %.1f ms)\n\n",
              plan.bits, plan.passes, plan.predicted_ns / 1e6);

  BatPtr l = RandomInts(n, 1);
  BatPtr r = RandomInts(n, 2);
  std::printf("%6s %7s %12s %12s\n", "bits", "passes", "measured(ms)",
              "predicted(ms)");
  const int configs[][2] = {{0, 1},          {4, 1},
                            {8, 2},          {12, 2},
                            {16, 2},         {plan.bits, plan.passes}};
  for (const auto& [bits, passes] : configs) {
    radix::PartitionedJoinOptions opt;
    opt.bits = bits;
    opt.passes = passes;
    WallTimer t;
    auto jr = radix::PartitionedHashJoin(l, r, opt);
    if (!jr.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   jr.status().ToString().c_str());
      return 1;
    }
    const double predicted =
        cost::PartitionedJoinCostNs(hw, n, n, 4, bits, passes) / 1e6;
    std::printf("%6d %7d %12.1f %12.1f%s\n", bits, passes,
                t.ElapsedMillis(), predicted,
                (bits == plan.bits && passes == plan.passes)
                    ? "   <- model's choice"
                    : "");
  }
  return 0;
}
