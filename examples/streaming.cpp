// Turbulent data streams (§6.2): the DataCell species. A synthetic sensor
// stream flows into a basket; two continuous queries — one raw, one
// filtered — are evaluated per tumbling window using the ordinary bulk
// relational kernels ("incremental bulk-event processing"). The
// event-at-a-time equivalent runs alongside for comparison.
//
//   ./build/examples/streaming [events]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "stream/datacell.h"

namespace {

using namespace mammoth;
using namespace mammoth::stream;

std::vector<Event> SensorBurst(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events(n);
  for (size_t i = 0; i < n; ++i) {
    events[i].ts = static_cast<int64_t>(i);
    events[i].key = static_cast<int32_t>(rng.Uniform(16));  // sensor id
    events[i].value = 20.0 + rng.NextDouble() * 10.0;       // temperature
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t nevents =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 20);
  const size_t window = 65536;

  DataCell cell;
  size_t alerts = 0;
  double checksum = 0;

  ContinuousQuery averages;
  averages.window = window;
  averages.emit = [&](int64_t id, const std::vector<WindowRow>& rows) {
    double hottest = 0;
    int32_t hottest_key = -1;
    for (const WindowRow& r : rows) {
      const double avg = r.sum / static_cast<double>(r.count);
      checksum += avg;
      if (r.max > hottest) {
        hottest = r.max;
        hottest_key = r.key;
      }
    }
    std::printf("window %3lld: %2zu sensors, hottest sensor %2d at %.2fC\n",
                static_cast<long long>(id), rows.size(), hottest_key,
                hottest);
  };

  ContinuousQuery hot;
  hot.window = window;
  hot.filtered = true;
  hot.lo = 29.0;  // alert band
  hot.hi = 100.0;
  hot.emit = [&](int64_t, const std::vector<WindowRow>& rows) {
    for (const WindowRow& r : rows) {
      alerts += static_cast<size_t>(r.count);
    }
  };

  cell.Register(averages);
  cell.Register(hot);

  std::printf("Streaming %zu events through %zu-event tumbling windows...\n",
              nevents, window);
  auto events = SensorBurst(nevents, 7);

  WallTimer t;
  // Events arrive in bursts; the cell pumps complete windows in bulk.
  const size_t burst = 10000;
  for (size_t off = 0; off < events.size(); off += burst) {
    const size_t n = std::min(burst, events.size() - off);
    cell.basket().AppendBatch(events.data() + off, n);
    auto pumped = cell.Pump();
    if (!pumped.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   pumped.status().ToString().c_str());
      return 1;
    }
  }
  const double bulk_ms = t.ElapsedMillis();

  // The conventional engine's per-event path (virtual operator chain with
  // an interpreted predicate), for scale.
  t.Reset();
  size_t naive_alerts = 0;
  for (size_t off = 0; off + window <= events.size(); off += window) {
    auto rows = InterpretedEventAtATimeWindow(events.data() + off, window,
                                              true, 29.0, 100.0);
    for (const WindowRow& r : rows) {
      naive_alerts += static_cast<size_t>(r.count);
    }
  }
  const double naive_ms = t.ElapsedMillis();

  std::printf("\n%lld windows, %zu alert events (checksum %.1f)\n",
              static_cast<long long>(cell.windows_emitted()), alerts,
              checksum);
  std::printf("bulk (DataCell) alert query+averages : %8.1f ms\n", bulk_ms);
  std::printf("event-at-a-time alert query only     : %8.1f ms\n", naive_ms);
  if (alerts != naive_alerts) {
    std::fprintf(stderr, "MISMATCH: %zu vs %zu\n", alerts, naive_alerts);
    return 1;
  }
  return 0;
}
