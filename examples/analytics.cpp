// Business-intelligence scenario (§1: the workload shift that motivated
// column stores). Loads a 2M-row synthetic sales fact table and answers
// the same analytical question three ways:
//   1. the Volcano tuple-at-a-time engine (the "dinosaur"),
//   2. the operator-at-a-time BAT algebra through SQL,
//   3. the X100-style vectorized pipeline,
// printing wall-clock times so the architectural gap is visible first-hand.
//
//   ./build/examples/analytics [rows]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "sql/engine.h"
#include "vector/pipeline.h"
#include "volcano/operators.h"

namespace {

using namespace mammoth;

constexpr int kRegions = 8;

struct SalesColumns {
  BatPtr region;  // int32 in [0, kRegions)
  BatPtr amount;  // double
  BatPtr year;    // int32 in [2000, 2009]
};

SalesColumns GenerateSales(size_t rows) {
  Rng rng(2009);
  SalesColumns s;
  s.region = Bat::New(PhysType::kInt32);
  s.amount = Bat::New(PhysType::kDouble);
  s.year = Bat::New(PhysType::kInt32);
  s.region->Resize(rows);
  s.amount->Resize(rows);
  s.year->Resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    s.region->MutableTailData<int32_t>()[i] =
        static_cast<int32_t>(rng.Uniform(kRegions));
    s.amount->MutableTailData<double>()[i] = rng.NextDouble() * 1000.0;
    s.year->MutableTailData<int32_t>()[i] =
        2000 + static_cast<int32_t>(rng.Uniform(10));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : (2u << 20);
  std::printf("Generating %zu sales rows...\n", rows);
  SalesColumns sales = GenerateSales(rows);

  // Question: revenue per region for years 2005-2007.
  std::printf(
      "\nQuery: SELECT region, sum(amount) FROM sales\n"
      "       WHERE year >= 2005 AND year <= 2007 GROUP BY region\n\n");

  // --- 1. Volcano (tuple-at-a-time) ---------------------------------------
  {
    using namespace volcano;
    WallTimer t;
    auto scan = MakeScan({sales.region, sales.amount, sales.year});
    auto filt = MakeFilter(
        std::move(scan),
        And(Cmp(CmpOp::kGe, ColumnRef(2), Const(Value::Int(2005))),
            Cmp(CmpOp::kLe, ColumnRef(2), Const(Value::Int(2007)))));
    auto agg = MakeAggregate(std::move(filt), {0},
                             {{AggSpec::Fn::kSum, 1}});
    auto out = Collect(agg.get());
    std::printf("Volcano tuple-at-a-time : %8.2f ms (%zu groups)\n",
                t.ElapsedMillis(), out.size());
  }

  // --- 2. BAT algebra via SQL ---------------------------------------------
  {
    sql::Engine engine;
    auto st = engine.Execute(
        "CREATE TABLE sales (region INT, amount DOUBLE, year INT)");
    if (!st.ok()) return 1;
    // Bulk-load straight into the table's delta BATs.
    auto table = engine.catalog()->Get("sales");
    WallTimer load;
    for (size_t i = 0; i < rows; ++i) {
      (void)(*table)->Insert(
          {Value::Int(sales.region->ValueAt<int32_t>(i)),
           Value::Real(sales.amount->ValueAt<double>(i)),
           Value::Int(sales.year->ValueAt<int32_t>(i))});
    }
    (void)(*table)->MergeDeltas();
    std::printf("  (SQL load: %.0f ms)\n", load.ElapsedMillis());

    WallTimer t;
    auto result = engine.Execute(
        "SELECT region, sum(amount) FROM sales "
        "WHERE year >= 2005 AND year <= 2007 GROUP BY region "
        "ORDER BY region");
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("BAT algebra (SQL)       : %8.2f ms\n", t.ElapsedMillis());
    std::printf("%s\n", result->ToText(kRegions).c_str());
  }

  // --- 3. Vectorized pipeline ---------------------------------------------
  {
    WallTimer t;
    vec::Pipeline p({sales.region, sales.amount, sales.year}, 1024);
    (void)p.AddSelectRange(2, 2005, 2007);
    (void)p.SetAggregate(0, kRegions, {{vec::AggFn::kSum, 1}});
    auto r = p.Run();
    if (!r.ok()) return 1;
    std::printf("Vectorized (X100-style) : %8.2f ms\n", t.ElapsedMillis());
    for (size_t g = 0; g < r->ngroups; ++g) {
      std::printf("  region %zu: %.2f\n", g, r->aggregates[0][g]);
    }
  }
  return 0;
}
