// Quickstart (Figure 1 end-to-end): the SQL front-end compiles queries into
// MAL programs executed by the BAT-algebra back-end. This example builds
// the paper's own BATs — the `name`/`age` columns of Figure 1 — runs
// select(age, 1927), and shows the generated MAL plan.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sql/engine.h"

int main() {
  mammoth::sql::Engine engine;

  auto check = [](const mammoth::Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  };

  // The table behind Figure 1.
  check(engine
            .Execute("CREATE TABLE people (name VARCHAR(32), age INT)")
            .status());
  check(engine
            .Execute("INSERT INTO people VALUES "
                     "('John Wayne', 1907), ('Roger Moore', 1927), "
                     "('Bob Fosse', 1927), ('Will Smith', 1968)")
            .status());

  // The paper's example: R := select(age, 1927).
  auto result =
      engine.Execute("SELECT name, age FROM people WHERE age = 1927");
  check(result.status());

  std::printf("Query: SELECT name, age FROM people WHERE age = 1927\n\n");
  std::printf("MAL plan (front-end output, after the optimizer pipeline):\n%s\n",
              engine.last_plan_text().c_str());
  std::printf("Result:\n%s\n", result->ToText().c_str());

  // Aggregation with grouping, ordering, and a range predicate — the MAL
  // optimizer fuses the >=/<= pair into one range select.
  result = engine.Execute(
      "SELECT age, count(*) FROM people "
      "WHERE age >= 1900 AND age <= 1970 GROUP BY age ORDER BY age");
  check(result.status());
  std::printf("Grouped query (%zu MAL instructions, %s):\n%s\n",
              engine.last_run_stats().instructions,
              engine.last_opt_report().ToString().c_str(),
              result->ToText().c_str());

  // Updates go to delta BATs; queries see them immediately (§3.2).
  check(engine.Execute("DELETE FROM people WHERE name = 'Will Smith'")
            .status());
  check(engine.Execute("INSERT INTO people VALUES ('Grace Hopper', 1906)")
            .status());
  result = engine.Execute("SELECT count(*) FROM people");
  check(result.status());
  std::printf("After one DELETE and one INSERT:\n%s\n",
              result->ToText().c_str());
  return 0;
}
