// The MammothDB network server: binds a TCP port, speaks the wire.h
// protocol and runs every session against one shared sql::Engine.
//
//   ./build/examples/mammoth_server --port 50517 --init warmup.sql
//
// Flags:
//   --host <addr>       bind address          (default 127.0.0.1)
//   --port <n>          port, 0 = ephemeral   (default 50517)
//   --sessions <n>      max concurrent sessions        (default 32)
//   --inflight <n>      max concurrently executing queries (default 4)
//   --timeout-ms <n>    admission queue timeout        (default 5000)
//   --threads <n>       kernel TaskPool workers, 0 = hardware (default 0)
//   --frontend <name>   epoll (default) or threads: the C10K reactor vs
//                       the legacy thread-per-connection front-end
//   --workers <n>       reactor worker pool size, 0 = from --inflight
//   --max-pipeline <n>  per-connection in-flight request bound (default 32)
//   --init <file>       SQL script executed before accepting connections
//                       (with --db-dir: only when the directory is fresh —
//                       a recovered catalog is never re-seeded)
//   --db-dir <dir>      durable database directory: recovered on startup,
//                       every DDL/DML write-ahead-logged with group commit
//   --checkpoint-bytes <n>  log bytes between automatic checkpoints
//                           (0 = only explicit CHECKPOINT; default 64 MiB)
//   --no-group-commit   one fsync per commit (benchmark baseline)
//   --replicate-from <host:port>  start as a read replica of that
//                       primary: engine is read-only (SELECTs only),
//                       fed from the primary's WAL stream; PROMOTE
//                       turns it into a writable primary (with
//                       --db-dir: a durable one, at the replayed LSN)
//   --no-semi-sync      primary acks commits without waiting for a
//                       replica to replay them (async replication)
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight queries drain,
// new connections and queries are rejected with a typed Error frame,
// then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace mammoth;

  server::ServerConfig config;
  config.port = 50517;
  std::string init_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    auto need = [&](const char* flag) {
      if (value == nullptr) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      ++i;
      return value;
    };
    if (arg == "--host") {
      config.host = need("--host");
    } else if (arg == "--port") {
      config.port = static_cast<uint16_t>(std::atoi(need("--port")));
    } else if (arg == "--sessions") {
      config.max_sessions = std::atoi(need("--sessions"));
    } else if (arg == "--inflight") {
      config.admission.max_inflight = std::atoi(need("--inflight"));
    } else if (arg == "--timeout-ms") {
      config.admission.queue_timeout_ms = std::atoi(need("--timeout-ms"));
    } else if (arg == "--threads") {
      config.threads = std::atoi(need("--threads"));
    } else if (arg == "--frontend") {
      const std::string name = need("--frontend");
      if (name == "epoll") {
        config.frontend = server::ServerConfig::Frontend::kEpoll;
      } else if (name == "threads") {
        config.frontend = server::ServerConfig::Frontend::kThreads;
      } else {
        std::fprintf(stderr, "--frontend must be epoll or threads\n");
        return 2;
      }
    } else if (arg == "--workers") {
      config.workers = std::atoi(need("--workers"));
    } else if (arg == "--max-pipeline") {
      config.max_pipeline = std::atoi(need("--max-pipeline"));
    } else if (arg == "--init") {
      init_file = need("--init");
    } else if (arg == "--db-dir") {
      config.db_dir = need("--db-dir");
    } else if (arg == "--checkpoint-bytes") {
      config.db.wal.checkpoint_log_bytes =
          static_cast<size_t>(std::atoll(need("--checkpoint-bytes")));
    } else if (arg == "--no-group-commit") {
      config.db.wal.group_commit = false;
    } else if (arg == "--replicate-from") {
      config.replicate_from = need("--replicate-from");
    } else if (arg == "--no-semi-sync") {
      config.repl_semi_sync = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  server::Server server(config);
  if (!config.replicate_from.empty()) {
    // Replica role: the catalog comes from the primary's WAL stream, so
    // neither recovery nor the init script runs here. With --db-dir the
    // directory stays untouched until PROMOTE re-anchors a fresh WAL in
    // it at the replayed LSN.
    init_file.clear();
  }
  if (!config.db_dir.empty() && config.replicate_from.empty()) {
    // Open (and recover) durable storage before the init script so the
    // script's DML is logged too — but only seed a *fresh* directory:
    // recovered data must not be re-seeded on every restart.
    const mammoth::Status opened = server.OpenDurableStorage();
    if (!opened.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    const auto& info = server.recovery_info();
    std::printf("recovered %s: checkpoint lsn %llu, %llu txns replayed%s\n",
                config.db_dir.c_str(),
                static_cast<unsigned long long>(info.checkpoint_lsn),
                static_cast<unsigned long long>(info.txns_applied),
                info.torn_tail ? " (torn tail truncated)" : "");
    if (!server.engine()->catalog()->TableNames().empty()) {
      init_file.clear();
    }
  }
  if (!init_file.empty()) {
    std::ifstream f(init_file);
    if (!f) {
      std::fprintf(stderr, "cannot open init script %s\n",
                   init_file.c_str());
      return 1;
    }
    std::stringstream script;
    script << f.rdbuf();
    auto init = server.engine()->ExecuteScript(script.str());
    if (!init.ok()) {
      std::fprintf(stderr, "init script failed: %s\n",
                   init.status().ToString().c_str());
      return 1;
    }
    std::printf("init script %s applied\n", init_file.c_str());
  }

  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("mammoth_server listening on %s:%u "
              "(sessions<=%d, inflight<=%d)\n",
              config.host.c_str(), server.port(), config.max_sessions,
              config.admission.max_inflight);
  if (!config.replicate_from.empty()) {
    std::printf("read replica of %s (read-only until PROMOTE)\n",
                config.replicate_from.c_str());
  }
  std::fflush(stdout);

  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  // Sleep in short ticks so a signal is noticed promptly; the signal
  // handler itself only sets a flag (async-signal-safe), the actual
  // drain runs here on the main thread.
  while (g_shutdown == 0) {
    struct timespec tick {0, 100 * 1000 * 1000};
    nanosleep(&tick, nullptr);
  }

  std::printf("shutdown signal received, draining...\n");
  std::fflush(stdout);
  server.Stop();  // drains in-flight queries, rejects new work, joins
  const auto stats = server.stats();
  std::printf("served %llu queries over %llu sessions, bye\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.sessions_total));
  return 0;
}
