// Self-managing storage (§6.1): database cracking in action. Fires a
// sequence of random range queries at a 4M-value column and prints how the
// per-query cost falls as the cracker index refines itself — no DBA, no
// knobs, no up-front sort. A scan and a sort-first strategy frame the
// comparison.
//
//   ./build/examples/adaptive_indexing [queries]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "core/select.h"
#include "core/sort.h"
#include "index/cracking.h"

namespace {

using namespace mammoth;

constexpr size_t kRows = 4 << 20;
constexpr int32_t kDomain = 1 << 30;

}  // namespace

int main(int argc, char** argv) {
  const size_t nqueries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;

  Rng rng(1);
  BatPtr column = Bat::New(PhysType::kInt32);
  column->Resize(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    column->MutableTailData<int32_t>()[i] =
        static_cast<int32_t>(rng.Uniform(kDomain));
  }

  struct Query {
    int32_t lo, hi;
  };
  std::vector<Query> queries(nqueries);
  for (auto& q : queries) {
    q.lo = static_cast<int32_t>(rng.Uniform(kDomain - kDomain / 100));
    q.hi = q.lo + kDomain / 100;  // 1% selectivity
  }

  // Strategy A: always scan.
  double scan_total = 0;
  {
    WallTimer t;
    for (const Query& q : queries) {
      auto r = algebra::RangeSelect(column, nullptr, Value::Int(q.lo),
                                    Value::Int(q.hi));
      if (!r.ok()) return 1;
    }
    scan_total = t.ElapsedMillis();
  }

  // Strategy B: sort everything first (the DBA's index), then search.
  double sort_build = 0, sort_queries = 0;
  {
    WallTimer t;
    auto sorted = algebra::Sort(column);
    if (!sorted.ok()) return 1;
    sort_build = t.ElapsedMillis();
    t.Reset();
    for (const Query& q : queries) {
      auto r = algebra::RangeSelect(sorted->sorted, nullptr,
                                    Value::Int(q.lo), Value::Int(q.hi));
      if (!r.ok()) return 1;
    }
    sort_queries = t.ElapsedMillis();
  }

  // Strategy C: cracking — reorganize only what queries touch.
  std::printf("Cracking, query by query (%zu queries, 1%% selectivity):\n",
              nqueries);
  std::printf("%8s %12s %10s %10s\n", "query", "time(ms)", "pieces",
              "hits");
  index::CrackerIndex<int32_t> idx(column->TailData<int32_t>(), kRows);
  double crack_total = 0;
  for (size_t i = 0; i < nqueries; ++i) {
    WallTimer t;
    auto oids = idx.RangeSelect(queries[i].lo, queries[i].hi);
    const double ms = t.ElapsedMillis();
    crack_total += ms;
    if (i < 10 || (i + 1) % 8 == 0 || i + 1 == nqueries) {
      std::printf("%8zu %12.3f %10zu %10zu\n", i + 1, ms, idx.PieceCount(),
                  oids.size());
    }
  }

  std::printf("\nTotals over %zu queries:\n", nqueries);
  std::printf("  always scan      : %10.1f ms\n", scan_total);
  std::printf("  sort first       : %10.1f ms  (%.1f build + %.1f queries)\n",
              sort_build + sort_queries, sort_build, sort_queries);
  std::printf("  cracking         : %10.1f ms  (no preparation at all)\n",
              crack_total);
  return 0;
}
